//! The streaming Spell parser.
//!
//! Consumes raw log messages one at a time and maintains the set of log
//! keys. A message either refines an existing key (variable positions are
//! discovered by disagreement) or founds a new key. The paper's IntelLog
//! embeds a ~400-line Spell with a matching threshold `t` set empirically to
//! 1.7 (§5); we follow both the algorithm and the default.
//!
//! # Hot path
//!
//! Tokens are interned to [`TokenId`]s once per message and every
//! comparison after that is a `u32` compare. Matching consults a
//! [`MatchIndex`] — a prefix tree for the exact-instance fast path plus an
//! inverted `token → key` index whose overlap bound prunes keys before the
//! LCS dynamic program runs (see `index.rs` for the soundness argument).
//! [`SpellParser::match_message_linear`] keeps the unindexed scan as the
//! executable specification; property tests assert the two agree.
//!
//! # Matching contract
//!
//! For a message of `n` tokens, a key of the same length is a match when
//! `lcs_len_wild(key, msg) ≥ ceil(n / t)`. Among matching keys the highest
//! LCS wins; ties go to the **lowest** [`KeyId`]. (An exact instance has
//! LCS `n`, the maximum, so exact matches always win.)

use crate::automaton::{AutoMatch, AutomatonStats, KeyAutomaton};
use crate::index::MatchIndex;
use crate::intern::{Interner, TokenId, STAR_ID, UNKNOWN_ID};
use crate::key::{KeyId, LogKey, STAR};
use crate::lcs::{lcs_len_wild_ids, positional_matches_wild_ids};
use lognlp::Span;
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::HashMap;

/// Tokenise a log message body for Spell.
///
/// Delegates to [`lognlp::tokenize`] so that key-token positions stay
/// aligned with the positions the NLP layer sees when it tags a key through
/// its sample message.
pub fn tokenize_message(message: &str) -> Vec<String> {
    lognlp::tokenize(message)
        .into_iter()
        .map(|t| t.text)
        .collect()
}

/// Result of feeding one message to the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOutcome {
    /// The key this message belongs to.
    pub key_id: KeyId,
    /// Whether the message founded a brand-new key.
    pub is_new_key: bool,
    /// The message tokens (as used for matching).
    pub tokens: Vec<String>,
}

/// Result of feeding one raw line through the zero-copy ingest path
/// ([`SpellParser::parse_line`]). Unlike [`ParseOutcome`] it carries no
/// materialised tokens — steady-state ingest never builds them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOutcome {
    /// The key this message belongs to.
    pub key_id: KeyId,
    /// Whether the message founded a brand-new key.
    pub is_new_key: bool,
}

/// Per-caller memo for repeated-message matching against a *frozen* parser.
///
/// Detection workloads re-match the same token sequence many times (every
/// `Starting task N` line differs only in variable positions that are often
/// themselves repeated). The memo maps an interned token sequence to its
/// match result. It is only sound while the parser is not being trained —
/// refinement can change what an existing sequence matches — so the parser
/// never owns one; detection call sites keep a memo per session or stream.
#[derive(Debug, Clone, Default)]
pub struct MatchMemo {
    map: HashMap<Vec<TokenId>, Option<KeyId>>,
}

impl MatchMemo {
    pub fn new() -> MatchMemo {
        MatchMemo::default()
    }

    /// Number of distinct sequences memoised.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Streaming Spell log-key extractor.
#[derive(Debug, Clone)]
pub struct SpellParser {
    /// Matching threshold `t`: a message of `n` tokens matches a key iff
    /// their LCS length is at least `n / t`. The paper sets 1.7.
    threshold: f64,
    keys: Vec<LogKey>,
    /// Token interner; key and message tokens live here.
    interner: Interner,
    /// Interned key tokens, parallel to `keys`.
    ikeys: Vec<Vec<TokenId>>,
    /// Prefix tree + inverted token index for candidate pruning.
    index: MatchIndex,
    /// Compiled matcher over the frozen key set ([`SpellParser::freeze`]);
    /// `None` while training. Any structural mutation invalidates it.
    automaton: Option<KeyAutomaton>,
    /// Counts structural changes (new key, token flipped to `*`). Lets
    /// batch callers validate speculative match results: a match computed
    /// against a snapshot is still exact iff the counter is unchanged.
    mutations: u64,
    /// Ablation switch: when `false`, [`SpellParser::match_ids`] runs the
    /// linear reference scan instead of the index (results are identical;
    /// used by benchmarks to measure the index's contribution).
    use_index: bool,
}

impl Default for SpellParser {
    fn default() -> Self {
        SpellParser::new(1.7)
    }
}

fn required_for(threshold: f64, n: usize) -> usize {
    (n as f64 / threshold).ceil() as usize
}

impl SpellParser {
    /// Create a parser with the given matching threshold (paper default 1.7).
    ///
    /// # Panics
    /// Panics if `threshold < 1.0` (a threshold below 1 would require an LCS
    /// longer than the message).
    pub fn new(threshold: f64) -> SpellParser {
        assert!(threshold >= 1.0, "Spell threshold must be >= 1.0");
        SpellParser {
            threshold,
            keys: Vec::new(),
            interner: Interner::new(),
            ikeys: Vec::new(),
            index: MatchIndex::new(),
            automaton: None,
            mutations: 0,
            use_index: true,
        }
    }

    /// Compile the current key set into the dense matching automaton (see
    /// `automaton.rs`). Call when training is done — detection, replay and
    /// the serving path all match against the compiled form. Any subsequent
    /// training call invalidates the automaton automatically.
    pub fn freeze(&mut self) {
        let t = self.threshold;
        self.automaton = Some(KeyAutomaton::compile(&self.ikeys, &|n| required_for(t, n)));
    }

    /// Drop the compiled automaton (training resumes on the live index).
    pub fn thaw(&mut self) {
        self.automaton = None;
    }

    /// `true` while a compiled automaton is active.
    pub fn is_frozen(&self) -> bool {
        self.automaton.is_some()
    }

    /// Compile-time statistics of the active automaton, if frozen.
    pub fn automaton_stats(&self) -> Option<AutomatonStats> {
        self.automaton.as_ref().map(|a| a.stats())
    }

    /// Enable/disable the candidate index (benchmark ablation; matching
    /// results are identical either way, only the cost changes).
    pub fn set_use_index(&mut self, on: bool) {
        self.use_index = on;
    }

    /// The matching threshold `t`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// All keys discovered so far.
    pub fn keys(&self) -> &[LogKey] {
        &self.keys
    }

    /// Look up a key by id.
    pub fn key(&self, id: KeyId) -> &LogKey {
        &self.keys[id.0 as usize]
    }

    /// Interned tokens of a key, parallel to [`LogKey::tokens`].
    pub fn key_ids(&self, id: KeyId) -> &[TokenId] {
        &self.ikeys[id.0 as usize]
    }

    /// Number of keys discovered.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if no key has been discovered yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Structural-mutation counter: bumps when a key is founded or a key
    /// position flips to `*`. (Pure count increments don't bump it — they
    /// cannot change any match result.)
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Minimum LCS length required for a message of `n` tokens to match.
    fn required_lcs(&self, n: usize) -> usize {
        required_for(self.threshold, n)
    }

    /// Intern a tokenised message for read-only matching: unseen tokens map
    /// to the unknown sentinel (they cannot equal any key constant).
    pub fn lookup_ids(&self, tokens: &[String]) -> Vec<TokenId> {
        self.interner.lookup_all(tokens)
    }

    /// [`SpellParser::lookup_ids`] into a caller-provided buffer (cleared
    /// first), so per-line detection loops reuse one allocation.
    pub fn lookup_ids_into(&self, tokens: &[String], out: &mut Vec<TokenId>) {
        self.interner.lookup_all_into(tokens, out);
    }

    /// Find the best-matching existing key for `tokens` without mutating
    /// anything. Used in the detection phase, where an unmatched message is
    /// an *unexpected log message* anomaly rather than a new key. The
    /// interned-id buffer lives in per-thread scratch — batch trainers call
    /// this once per message from pool workers.
    pub fn match_message(&self, tokens: &[String]) -> Option<KeyId> {
        crate::scratch::with_ids(|ids| {
            self.interner.lookup_all_into(tokens, ids);
            self.match_ids(ids)
        })
    }

    // lint: ingest-hot(begin)

    /// Matcher over interned tokens. See the module docs for the matching
    /// contract; equivalent to [`SpellParser::match_ids_linear`]. Dispatch:
    /// the compiled automaton when frozen, the live prefix-tree + inverted
    /// index otherwise, the linear scan under the ablation switch.
    pub fn match_ids(&self, ids: &[TokenId]) -> Option<KeyId> {
        if !self.use_index {
            return self.match_ids_linear(ids);
        }
        if let Some(auto) = &self.automaton {
            return match auto.match_ids(ids) {
                AutoMatch::Exact(ki) => {
                    obs::inc!("spell.match.trie_hits");
                    Some(self.keys[ki as usize].id)
                }
                AutoMatch::Scored(ki) => {
                    obs::inc!("spell.match.index_hits");
                    Some(self.keys[ki as usize].id)
                }
                AutoMatch::Miss => {
                    obs::inc!("spell.match.misses");
                    None
                }
            };
        }
        self.match_ids_index(ids)
    }

    /// The live-index matcher (prefix tree + inverted index), regardless of
    /// freeze state. Public so benchmarks and equivalence tests can compare
    /// it against the automaton directly.
    pub fn match_ids_index(&self, ids: &[TokenId]) -> Option<KeyId> {
        // Exact-instance fast path: the prefix tree yields every key this
        // message instantiates (stale paths are filtered by verification);
        // an exact instance has the maximal LCS `n`, so the lowest such
        // KeyId is the final answer.
        let exact = crate::scratch::with_exact(|cands| {
            self.index.exact_candidates_into(ids, cands);
            cands
                .iter()
                .copied()
                .find(|&ki| is_instance(&self.ikeys[ki as usize], ids))
        });
        if let Some(ki) = exact {
            obs::inc!("spell.match.trie_hits");
            return Some(self.keys[ki as usize].id);
        }
        let required = self.required_lcs(ids.len());
        let best = crate::scratch::with_cands(|cands| {
            self.index.scored_candidates_into(ids, cands);
            let mut best: Option<(usize, u32)> = None;
            for &(ki, bound) in cands.iter() {
                // Even reaching its upper bound, this key cannot strictly
                // beat the best so far (earlier id wins ties) — skip the LCS.
                if best.is_some_and(|(s, _)| bound <= s) {
                    continue;
                }
                let key = &self.ikeys[ki as usize];
                let pos = positional_matches_wild_ids(key, ids);
                // `pos ≤ lcs ≤ bound`, so hitting the bound positionally
                // settles the LCS without running the dynamic program.
                let score = if pos == bound {
                    pos
                } else {
                    lcs_len_wild_ids(key, ids)
                };
                if score >= required && best.is_none_or(|(s, _)| score > s) {
                    best = Some((score, ki));
                }
            }
            best
        });
        match best {
            Some((_, ki)) => {
                obs::inc!("spell.match.index_hits");
                Some(self.keys[ki as usize].id)
            }
            None => {
                obs::inc!("spell.match.misses");
                None
            }
        }
    }

    // lint: ingest-hot(end)

    /// Memoised [`SpellParser::match_ids`] for frozen-parser workloads.
    /// See [`MatchMemo`] for the soundness condition.
    pub fn match_ids_memo(&self, ids: &[TokenId], memo: &mut MatchMemo) -> Option<KeyId> {
        if let Some(&hit) = memo.map.get(ids) {
            obs::inc!("spell.match.memo_hits");
            return hit;
        }
        let result = self.match_ids(ids);
        memo.map.insert(ids.to_vec(), result);
        result
    }

    /// Reference matcher: a plain linear scan with one score — the wildcard
    /// LCS — for every same-length key. This is the executable
    /// specification of the matching contract; `match_ids` must agree with
    /// it on every input (property-tested in `tests/proptests.rs`).
    pub fn match_ids_linear(&self, ids: &[TokenId]) -> Option<KeyId> {
        obs::inc!("spell.match.linear_scans");
        let required = self.required_lcs(ids.len());
        let mut best: Option<(usize, u32)> = None;
        for (ki, key) in self.ikeys.iter().enumerate() {
            if key.len() != ids.len() {
                continue;
            }
            let score = lcs_len_wild_ids(key, ids);
            if score >= required && best.is_none_or(|(s, _)| score > s) {
                best = Some((score, ki as u32));
            }
        }
        best.map(|(_, ki)| self.keys[ki as usize].id)
    }

    /// String-token form of [`SpellParser::match_ids_linear`].
    pub fn match_message_linear(&self, tokens: &[String]) -> Option<KeyId> {
        self.match_ids_linear(&self.lookup_ids(tokens))
    }

    /// Feed one pre-tokenised message; returns the key it was assigned to.
    pub fn parse_tokens(&mut self, tokens: Vec<String>) -> ParseOutcome {
        self.parse_tokens_with_hint(tokens, None)
    }

    /// Feed one pre-tokenised message, optionally supplying a precomputed
    /// match result (`hint`). The hint must have been computed by
    /// `match_message`/`match_ids` on this parser while its
    /// [`SpellParser::mutations`] counter held its current value — batch
    /// trainers compute hints in parallel against a snapshot and pass them
    /// here only when the counter is unchanged, which makes parallel
    /// training bit-identical to sequential.
    pub fn parse_tokens_with_hint(
        &mut self,
        tokens: Vec<String>,
        hint: Option<Option<KeyId>>,
    ) -> ParseOutcome {
        // Training invalidates any compiled automaton (its key set would
        // go stale on the first refinement or new key).
        self.automaton = None;
        obs::inc!("spell.lines_parsed");
        let ids = self.interner.intern_all(&tokens);
        let matched = match hint {
            Some(precomputed) => precomputed,
            None => self.match_ids(&ids),
        };
        if let Some(id) = matched {
            self.refine(id, &ids);
            return ParseOutcome {
                key_id: id,
                is_new_key: false,
                tokens,
            };
        }
        let id = self.found_key(ids, tokens.clone());
        ParseOutcome {
            key_id: id,
            is_new_key: true,
            tokens,
        }
    }

    /// Refine key `id` against a matched message: any position where the
    /// key's constant token disagrees with the message becomes a variable
    /// position. Allocation-free when nothing flips (the steady state).
    fn refine(&mut self, id: KeyId, ids: &[TokenId]) {
        let ki = id.0 as usize;
        let mut flipped = 0u32;
        {
            let key = &mut self.keys[ki];
            let ikey = &mut self.ikeys[ki];
            for (p, &mid) in ids.iter().enumerate() {
                if ikey[p] != STAR_ID && ikey[p] != mid {
                    ikey[p] = STAR_ID;
                    key.tokens[p] = STAR.to_string();
                    flipped += 1;
                }
            }
            key.count += 1;
        }
        if flipped > 0 {
            obs::inc!("spell.keys_refined");
            obs::add!("spell.positions_wildcarded", flipped as u64);
            obs::event!("spell.key_refined", "key" = id.0, "flipped" = flipped);
            self.mutations += 1;
            self.index.note_refinement(id.0, &self.ikeys[ki], flipped);
            if self.index.needs_rebuild() {
                obs::inc!("spell.index_rebuilds");
                self.rebuild_index();
            }
        }
    }

    /// Found a brand-new key from an unmatched message.
    fn found_key(&mut self, ids: Vec<TokenId>, tokens: Vec<String>) -> KeyId {
        let id = KeyId(self.keys.len() as u32);
        obs::inc!("spell.keys_created");
        obs::event!("spell.new_key", "key" = id.0, "len" = ids.len());
        self.mutations += 1;
        self.index
            .insert_key(id.0, &ids, self.required_lcs(ids.len()));
        self.keys.push(LogKey {
            id,
            tokens: tokens.clone(),
            sample: tokens,
            count: 1,
        });
        self.ikeys.push(ids);
        id
    }

    /// Feed one raw message string.
    pub fn parse_message(&mut self, message: &str) -> ParseOutcome {
        self.parse_tokens(tokenize_message(message))
    }

    // lint: ingest-hot(begin)

    /// Feed one raw line through the zero-copy ingest path: byte-span
    /// tokenisation straight off the line buffer, span-slice interning,
    /// and matching — with no per-line `String` or `Vec` in the steady
    /// state (tokens are materialised only when the line founds a new key;
    /// see `tests/zero_alloc.rs`). Equivalent to
    /// [`SpellParser::parse_message`] minus the returned token vector.
    pub fn parse_line(&mut self, message: &str) -> LineOutcome {
        self.automaton = None;
        obs::inc!("spell.lines_parsed");
        crate::scratch::with_line(|line| {
            lognlp::tokenize_spans(message, &mut line.spans);
            line.ids.clear();
            for s in line.spans.iter() {
                line.ids.push(self.interner.intern(s.of(message)));
            }
            if let Some(id) = self.match_ids(&line.ids) {
                self.refine(id, &line.ids);
                return LineOutcome {
                    key_id: id,
                    is_new_key: false,
                };
            }
            // lint: allow(alloc) — founding a key is a rare structural
            // mutation; tokens are materialised only here.
            let tokens: Vec<String> = line
                .spans
                .iter()
                .map(|s| s.of(message).to_string())
                .collect();
            let id = self.found_key(line.ids.clone(), tokens);
            LineOutcome {
                key_id: id,
                is_new_key: true,
            }
        })
    }

    /// Match a raw line without mutating anything, through the zero-copy
    /// path: spans are resolved against the interner by byte slice
    /// ([`Interner::lookup_bytes`]), so a match against a frozen parser
    /// performs no allocation at all.
    pub fn match_line(&self, message: &str) -> Option<KeyId> {
        crate::scratch::with_line(|line| {
            self.lookup_line_into_buffers(message, &mut line.spans, &mut line.ids);
            self.match_ids(&line.ids)
        })
    }

    /// Tokenise and intern-lookup one raw line into caller-provided
    /// buffers (both cleared first): spans index `message`, and unseen
    /// tokens map to [`UNKNOWN_ID`]. Streaming callers keep both buffers
    /// across lines so the per-line cost is allocation-free.
    pub fn lookup_line_into(&self, message: &str, spans: &mut Vec<Span>, out: &mut Vec<TokenId>) {
        self.lookup_line_into_buffers(message, spans, out);
    }

    #[inline]
    fn lookup_line_into_buffers(
        &self,
        message: &str,
        spans: &mut Vec<Span>,
        out: &mut Vec<TokenId>,
    ) {
        lognlp::tokenize_spans(message, spans);
        out.clear();
        for s in spans.iter() {
            out.push(
                self.interner
                    .lookup_bytes(s.of(message).as_bytes())
                    .unwrap_or(UNKNOWN_ID),
            );
        }
    }

    // lint: ingest-hot(end)

    /// Match a raw message without mutating the key set. Routed through
    /// the zero-copy span path ([`SpellParser::match_line`]).
    pub fn match_raw(&self, message: &str) -> Option<KeyId> {
        self.match_line(message)
    }

    fn rebuild_index(&mut self) {
        let t = self.threshold;
        self.index.rebuild(&self.ikeys, &|n| required_for(t, n));
    }

    /// Reassemble a parser from its serialised parts (threshold + keys).
    /// The interner, index and automaton are derived state and are rebuilt
    /// here. Deserialised parsers arrive frozen: loading a model (the
    /// model store, serve/gateway `LOAD`, replay) is exactly the moment
    /// the key set stops changing, so the compiled matcher is active from
    /// the first line served.
    fn from_parts(threshold: f64, keys: Vec<LogKey>) -> SpellParser {
        let mut p = SpellParser::new(threshold);
        for key in keys {
            debug_assert_eq!(
                key.id.0 as usize,
                p.keys.len(),
                "keys must arrive in id order"
            );
            let ids = p.interner.intern_all(&key.tokens);
            p.index
                .insert_key(key.id.0, &ids, required_for(threshold, ids.len()));
            p.ikeys.push(ids);
            p.keys.push(key);
        }
        p.freeze();
        p
    }
}

#[inline]
fn is_instance(key: &[TokenId], msg: &[TokenId]) -> bool {
    key.len() == msg.len() && key.iter().zip(msg).all(|(&k, &m)| k == STAR_ID || k == m)
}

/// Serialised form: threshold + keys only. The interner, interned key
/// mirror and match index are derived state, rebuilt on deserialisation —
/// this keeps the JSON format identical to the pre-index parser.
#[derive(Serialize, Deserialize)]
struct SpellParserState {
    threshold: f64,
    keys: Vec<LogKey>,
}

impl Serialize for SpellParser {
    fn serialize_content(&self) -> Content {
        SpellParserState {
            threshold: self.threshold,
            keys: self.keys.clone(),
        }
        .serialize_content()
    }
}

impl Deserialize for SpellParser {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let state = SpellParserState::deserialize_content(content)?;
        Ok(SpellParser::from_parts(state.threshold, state.keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_keys_emerge() {
        // The three Fig. 1 message families each converge onto one key with
        // the right variable positions.
        let mut p = SpellParser::default();
        let a1 = p.parse_message("fetcher # 1 about to shuffle output of map attempt_01");
        let a2 = p.parse_message("fetcher # 2 about to shuffle output of map attempt_07");
        assert_eq!(a1.key_id, a2.key_id);
        assert!(a1.is_new_key && !a2.is_new_key);
        assert_eq!(
            p.key(a1.key_id).render(),
            "fetcher # * about to shuffle output of map *"
        );

        let b1 = p.parse_message("[fetcher # 1] read 2264 bytes from map-output for attempt_01");
        let b2 = p.parse_message("[fetcher # 3] read 999 bytes from map-output for attempt_02");
        assert_eq!(b1.key_id, b2.key_id);
        assert_eq!(
            p.key(b1.key_id).render(),
            "[ fetcher # * read * bytes from map-output for *"
        );

        let c1 = p.parse_message("host1:13562 freed by fetcher # 1 in 4ms");
        let c2 = p.parse_message("host9:13562 freed by fetcher # 2 in 18ms");
        assert_eq!(c1.key_id, c2.key_id);
        assert_eq!(p.key(c1.key_id).render(), "* freed by fetcher # * in *");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn sample_is_first_message() {
        let mut p = SpellParser::default();
        let a = p.parse_message("Starting MapTask metrics system");
        p.parse_message("Stopping MapTask metrics system");
        assert_eq!(p.key(a.key_id).render(), "* MapTask metrics system");
        assert_eq!(
            p.key(a.key_id).render_sample(),
            "Starting MapTask metrics system"
        );
        assert_eq!(p.key(a.key_id).count, 2);
    }

    #[test]
    fn dissimilar_messages_found_new_keys() {
        let mut p = SpellParser::default();
        let a = p.parse_message("Registered BlockManager on host1");
        let b = p.parse_message("Removing block broadcast_0 from memory");
        assert_ne!(a.key_id, b.key_id);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn threshold_controls_merging() {
        // With a permissive threshold (2.0 → LCS ≥ n/2) these merge; with a
        // strict threshold (1.0 → exact) they do not.
        let m1 = "task 1 finished on host1 cleanly today";
        let m2 = "task 2 crashed on host2 cleanly today";
        let mut strict = SpellParser::new(1.0);
        let s1 = strict.parse_message(m1);
        let s2 = strict.parse_message(m2);
        assert_ne!(s1.key_id, s2.key_id);
        let mut loose = SpellParser::new(2.0);
        let l1 = loose.parse_message(m1);
        let l2 = loose.parse_message(m2);
        assert_eq!(l1.key_id, l2.key_id);
    }

    #[test]
    fn match_message_is_pure() {
        let mut p = SpellParser::default();
        p.parse_message("container launched on host1");
        let before = p.len();
        assert!(p.match_raw("container launched on host9").is_some());
        assert!(p.match_raw("utterly different words entirely").is_none());
        assert_eq!(p.len(), before);
    }

    #[test]
    fn different_lengths_never_match() {
        let mut p = SpellParser::default();
        let a = p.parse_message("task finished");
        let b = p.parse_message("task finished in 4 seconds");
        assert_ne!(a.key_id, b.key_id);
    }

    #[test]
    fn best_match_wins_over_first_match() {
        let mut p = SpellParser::new(1.7);
        p.parse_message("alpha beta gamma delta epsilon zeta eta");
        p.parse_message("alpha beta gamma delta epsilon yot eta");
        // second merged into first: key now has one star
        let probe = p
            .match_raw("alpha beta gamma delta epsilon zeta eta")
            .unwrap();
        assert_eq!(probe, KeyId(0));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_panics() {
        let _ = SpellParser::new(0.5);
    }

    #[test]
    fn higher_lcs_beats_earlier_key() {
        // Contract: the highest wildcard LCS wins, not the first key whose
        // positional count clears the threshold. key0 shares 4 of 6 tokens
        // with the probe, key1 shares 5 — key1 must win even though key0
        // was founded first and also clears the threshold.
        let mut p = SpellParser::new(1.7); // 6 tokens → LCS ≥ 4
        let k0 = p.parse_tokens(toks("read block a1 from disk zero")).key_id;
        let k1 = p.parse_tokens(toks("read block a1 from disk one")).key_id;
        // the two founding messages merged? they share 5 of 6 → merged.
        assert_eq!(k0, k1);
        let k2 = p.parse_tokens(toks("send chunk a1 over wire zero")).key_id;
        assert_ne!(k0, k2);
        // probe: LCS 4 with key0-family, exact with neither
        let probe = toks("read block a1 from cable zero");
        let got = p.match_message(&probe).unwrap();
        let linear = p.match_message_linear(&probe).unwrap();
        assert_eq!(got, linear);
        assert_eq!(got, k0);
    }

    #[test]
    fn ties_go_to_lowest_key_id() {
        // 6 tokens at t=1.7 → LCS ≥ 4. The two founding messages share only
        // "p q" (LCS 2 < 4) so they found distinct keys; the probe reaches
        // LCS exactly 4 with both — a genuine tie, resolved to the lowest id.
        let mut p = SpellParser::new(1.7);
        let a = p.parse_tokens(toks("a b c d p q")).key_id;
        let b = p.parse_tokens(toks("w x y z p q")).key_id;
        assert_ne!(a, b);
        let probe = toks("a b w x p q");
        assert_eq!(p.match_message(&probe), Some(a));
        assert_eq!(p.match_message_linear(&probe), Some(a));
    }

    #[test]
    fn indexed_matches_linear_on_detection_probes() {
        // Train on message families, then probe with held-out variants
        // (unknown tokens included) and assert indexed == linear.
        let mut p = SpellParser::default();
        for host in 1..8 {
            for task in 1..6 {
                p.parse_message(&format!("starting task {task} on host{host} now"));
                p.parse_message(&format!("finished task {task} on host{host} ok"));
                p.parse_message(&format!(
                    "host{host}:13562 freed by fetcher # {task} in 4ms"
                ));
            }
        }
        let probes = [
            "starting task 99 on host42 now",
            "finished task 1 on host1 ok",
            "host77:13562 freed by fetcher # 9 in 18ms",
            "utterly unrelated words that match nothing at all",
            "starting task on host now extra",
        ];
        for probe in probes {
            let tokens = tokenize_message(probe);
            assert_eq!(
                p.match_message(&tokens),
                p.match_message_linear(&tokens),
                "divergence on {probe:?}"
            );
        }
    }

    #[test]
    fn memo_agrees_with_direct_matching() {
        let mut p = SpellParser::default();
        p.parse_message("starting task 1 on host1");
        p.parse_message("starting task 2 on host2");
        p.parse_message("shutdown hook called");
        let mut memo = MatchMemo::new();
        let msgs = [
            "starting task 9 on host9",
            "shutdown hook called",
            "nothing matches this",
        ];
        for m in msgs.iter().chain(msgs.iter()) {
            let ids = p.lookup_ids(&tokenize_message(m));
            assert_eq!(p.match_ids_memo(&ids, &mut memo), p.match_ids(&ids), "{m}");
        }
        assert_eq!(memo.len(), 3, "distinct sequences memoised once each");
    }

    #[test]
    fn serde_roundtrip_preserves_matching() {
        let mut p = SpellParser::default();
        for i in 0..20 {
            p.parse_message(&format!("starting task {i} on host{} now", i % 3));
            p.parse_message(&format!("block manager registered with {i} GB memory"));
        }
        let json = serde_json::to_string(&p).unwrap();
        let q: SpellParser = serde_json::from_str(&json).unwrap();
        assert_eq!(q.threshold(), p.threshold());
        assert_eq!(q.keys(), p.keys());
        for probe in [
            "starting task 99 on host7 now",
            "block manager registered with 9 GB memory",
            "no match here at all",
        ] {
            let tokens = tokenize_message(probe);
            assert_eq!(
                q.match_message(&tokens),
                p.match_message(&tokens),
                "{probe}"
            );
        }
        // serialised form is stable: re-serialising the round-tripped
        // parser is byte-identical
        assert_eq!(serde_json::to_string(&q).unwrap(), json);
    }

    #[test]
    fn hint_path_equals_unhinted_parse() {
        let msgs: Vec<Vec<String>> = (0..40)
            .map(|i| toks(&format!("worker {} sent {} bytes to driver", i % 4, i * 7)))
            .collect();
        let mut a = SpellParser::default();
        let mut b = SpellParser::default();
        for m in &msgs {
            let snapshot = b.mutations();
            let hint = b.match_message(m);
            let oa = a.parse_tokens(m.clone());
            let ob = if b.mutations() == snapshot {
                b.parse_tokens_with_hint(m.clone(), Some(hint))
            } else {
                b.parse_tokens(m.clone())
            };
            assert_eq!(oa, ob);
        }
        assert_eq!(a.keys(), b.keys());
    }

    #[test]
    fn index_survives_heavy_refinement_rebuilds() {
        // Enough star-flips to trigger needs_rebuild() several times; the
        // indexed matcher must stay equivalent to the linear scan
        // throughout.
        let mut p = SpellParser::default();
        for i in 0..300 {
            let m = toks(&format!("phase {} item {} state {} done", i % 10, i, i % 7));
            p.parse_tokens(m.clone());
            assert_eq!(p.match_message(&m), p.match_message_linear(&m));
        }
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }
}
