//! Compiled key-matching automaton — the frozen-model fast path.
//!
//! Training mutates the key set continuously, so the live matcher
//! (`index.rs`) is built for cheap incremental updates and tolerates
//! refinement garbage. Detection and serving run against a *frozen* model,
//! which admits a much denser representation compiled once by
//! [`KeyAutomaton::compile`]:
//!
//! * keys are grouped into per-message-length **buckets** (only same-length
//!   keys can match), each with a **sorted token dictionary** of the
//!   constant tokens its keys use — one binary search per message token
//!   resolves both the DFA edge label *and* the postings slice for the
//!   inverted-index prune, fusing the two lookups the live path pays
//!   separately (trie-edge HashMap probe + postings HashMap probe);
//! * the exact-instance prefix tree is determinised into a **prefix DFA**
//!   (subset construction over the garbage-free trie, wildcard edges as
//!   per-state default transitions), so the exact phase is one transition
//!   per token with no frontier management; buckets whose subset
//!   construction would blow past a state budget keep the flattened trie
//!   and walk it NFA-style (`Machine::Frontier`) — same verdicts, bounded
//!   memory;
//! * postings are stored garbage-free in CSR layout over **bucket-local
//!   key ids**, so the scoring pass runs on dense arrays with touched-list
//!   resets instead of hash maps (see `scratch.rs::AutoScratch`).
//!
//! # Equivalence
//!
//! Verdicts are identical to `MatchIndex` + `match_ids` and to the linear
//! reference scan (property-tested in `tests/proptests.rs` and
//! `tests/automaton_equivalence.rs`):
//!
//! * the exact phase accepts exactly the keys the message instantiates
//!   (every path of the garbage-free trie corresponds to a live key, so no
//!   verification step is needed), and returns the lowest such key id —
//!   an exact instance has the maximal LCS `n`, so it is the final answer;
//! * the scoring phase uses the same sound upper bound
//!   `min(stars + Σ min(mult_key, mult_msg), n)`; garbage-free postings
//!   can only make the bound *tighter* than the live index's, which can
//!   only prune keys whose true LCS is below threshold — never a winner —
//!   and candidates are scanned in ascending key order with the identical
//!   best-score/lowest-id selection loop.

use crate::intern::{TokenId, STAR_ID};
use crate::lcs::{lcs_len_wild_ids, positional_matches_wild_ids};
use crate::scratch::{self, AutoScratch};
use std::collections::{BTreeMap, HashMap};

/// Sentinel for "no state / no token / no terminal" in the packed tables.
const NONE: u32 = u32::MAX;

/// Hard ceilings for subset construction, scaled to the bucket's trie.
/// Blowing past either falls back to the frontier walk (correct, compact).
fn dfa_budget(nfa_nodes: usize, nfa_edges: usize) -> (usize, usize) {
    (4 * nfa_nodes + 256, 16 * nfa_edges + 1024)
}

/// Outcome of one automaton match, tagged with the phase that decided it
/// (the parser mirrors the live path's observability counters from this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AutoMatch {
    /// Message is an exact instance of this key index (global).
    Exact(u32),
    /// Best scored key index (global) at or above the LCS threshold.
    Scored(u32),
    /// No key matches.
    Miss,
}

/// Compile-time statistics, surfaced through
/// [`crate::parser::SpellParser::automaton_stats`] for tests and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AutomatonStats {
    /// Number of length buckets.
    pub buckets: usize,
    /// Buckets whose exact phase is a determinised DFA.
    pub dense_buckets: usize,
    /// Total exact-phase states across buckets (DFA states or trie nodes).
    pub states: usize,
    /// Total keys compiled in.
    pub keys: usize,
}

/// A frozen key set compiled for matching. Self-contained: owns copies of
/// the key token sequences, so matching needs no access to the live parser
/// structures.
#[derive(Debug, Clone)]
pub(crate) struct KeyAutomaton {
    /// Indexed by message token count.
    buckets: Vec<Option<Bucket>>,
    stats: AutomatonStats,
}

#[derive(Debug, Clone)]
struct Bucket {
    /// Key/message length of this bucket.
    len: usize,
    /// Minimum wildcard LCS required for a match at this length.
    required: usize,
    /// Global key indices, ascending; position is the bucket-local key id.
    keys: Vec<u32>,
    /// Flattened key tokens: row `lk` is `key_toks[lk*len .. (lk+1)*len]`.
    key_toks: Vec<TokenId>,
    /// `*` count per local key.
    stars: Vec<u32>,
    /// Local keys whose star count alone meets `required` (ascending).
    high_star: Vec<u32>,
    /// Sorted distinct constant tokens of this bucket's keys. Binary
    /// searching a message token here yields its local id — the label used
    /// by the DFA edges *and* the postings row below.
    dict: Vec<TokenId>,
    /// CSR offsets into `postings`, length `dict.len() + 1`.
    post_start: Vec<u32>,
    /// (local key, multiplicity) pairs, grouped by dictionary token.
    postings: Vec<(u32, u32)>,
    /// Exact-instance machine over local token ids.
    machine: Machine,
}

#[derive(Debug, Clone)]
enum Machine {
    Dense(Dfa),
    Frontier(Nfa),
}

/// Determinised prefix automaton. All tables are indexed by state id;
/// `edges` is CSR with per-state runs sorted by local token id.
#[derive(Debug, Clone)]
struct Dfa {
    edge_start: Vec<u32>,
    edges: Vec<(u32, u32)>,
    /// Default transition (wildcard key positions); `NONE` if absent.
    star_next: Vec<u32>,
    /// Lowest local key terminating at this state (`NONE` unless the state
    /// is at full depth).
    terminal: Vec<u32>,
}

/// Flattened garbage-free trie for the frontier fallback. Same table
/// layout as [`Dfa`], but a walk maintains a node frontier.
#[derive(Debug, Clone)]
struct Nfa {
    edge_start: Vec<u32>,
    edges: Vec<(u32, u32)>,
    star_child: Vec<u32>,
    terminal: Vec<u32>,
}

impl KeyAutomaton {
    /// Compile the live key set. `required_for(n)` is the matching
    /// threshold for messages of `n` tokens (ceil(n / t)).
    pub(crate) fn compile(
        ikeys: &[Vec<TokenId>],
        required_for: &dyn Fn(usize) -> usize,
    ) -> KeyAutomaton {
        let mut by_len: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for (ki, ids) in ikeys.iter().enumerate() {
            by_len.entry(ids.len()).or_default().push(ki as u32);
        }
        let max_len = by_len.keys().next_back().copied().unwrap_or(0);
        let mut buckets: Vec<Option<Bucket>> = Vec::new();
        buckets.resize_with(max_len + 1, || None);
        let mut stats = AutomatonStats {
            keys: ikeys.len(),
            ..AutomatonStats::default()
        };
        for (len, keys) in by_len {
            let bucket = Bucket::compile(len, keys, ikeys, required_for(len));
            stats.buckets += 1;
            match &bucket.machine {
                Machine::Dense(d) => {
                    stats.dense_buckets += 1;
                    stats.states += d.star_next.len();
                }
                Machine::Frontier(n) => stats.states += n.star_child.len(),
            }
            buckets[len] = Some(bucket);
        }
        KeyAutomaton { buckets, stats }
    }

    pub(crate) fn stats(&self) -> AutomatonStats {
        self.stats
    }

    // lint: ingest-hot(begin)

    /// Match an interned message against the compiled key set. Runs on
    /// per-thread scratch; allocation-free in the steady state.
    pub(crate) fn match_ids(&self, ids: &[TokenId]) -> AutoMatch {
        let Some(Some(bucket)) = self.buckets.get(ids.len()) else {
            return AutoMatch::Miss;
        };
        scratch::with_auto(|auto| bucket.match_in(ids, auto))
    }

    // lint: ingest-hot(end)
}

impl Bucket {
    fn compile(len: usize, keys: Vec<u32>, ikeys: &[Vec<TokenId>], required: usize) -> Bucket {
        let nkeys = keys.len();
        // Flatten key rows and gather the constant-token dictionary.
        let mut key_toks: Vec<TokenId> = Vec::with_capacity(nkeys * len);
        let mut dict: Vec<TokenId> = Vec::new();
        let mut stars: Vec<u32> = Vec::with_capacity(nkeys);
        for &ki in &keys {
            let row = &ikeys[ki as usize];
            key_toks.extend_from_slice(row);
            let mut s = 0u32;
            for &tok in row {
                if tok == STAR_ID {
                    s += 1;
                } else {
                    dict.push(tok);
                }
            }
            stars.push(s);
        }
        dict.sort_unstable();
        dict.dedup();
        let high_star: Vec<u32> = (0..nkeys as u32)
            .filter(|&lk| stars[lk as usize] as usize >= required)
            .collect();
        // Postings in CSR over local token ids: (ltok, lk, mult) triples
        // sorted by (ltok, lk). `counts` scratch is per-key multiplicity.
        let mut triples: Vec<(u32, u32, u32)> = Vec::new();
        let mut counts: HashMap<TokenId, u32> = HashMap::new();
        for lk in 0..nkeys {
            counts.clear();
            for &tok in &key_toks[lk * len..(lk + 1) * len] {
                if tok != STAR_ID {
                    *counts.entry(tok).or_default() += 1;
                }
            }
            for (&tok, &mult) in counts.iter() {
                let lt = dict.binary_search(&tok).expect("token in dictionary") as u32;
                triples.push((lt, lk as u32, mult));
            }
        }
        triples.sort_unstable();
        let mut post_start = vec![0u32; dict.len() + 1];
        let mut postings: Vec<(u32, u32)> = Vec::with_capacity(triples.len());
        for &(lt, lk, mult) in &triples {
            post_start[lt as usize + 1] += 1;
            postings.push((lk, mult));
        }
        for i in 0..dict.len() {
            post_start[i + 1] += post_start[i];
        }
        // Exact-phase machine: garbage-free trie, then determinisation.
        let nfa = Nfa::build(len, nkeys, &key_toks, &dict);
        let machine = match Dfa::determinise(&nfa) {
            Some(dfa) => Machine::Dense(dfa),
            None => Machine::Frontier(nfa),
        };
        Bucket {
            len,
            required,
            keys,
            key_toks,
            stars,
            high_star,
            dict,
            post_start,
            postings,
            machine,
        }
    }

    // lint: ingest-hot(begin)

    fn match_in(&self, ids: &[TokenId], auto: &mut AutoScratch) -> AutoMatch {
        debug_assert_eq!(ids.len(), self.len);
        // One binary search per message token resolves the DFA edge label
        // and the postings row at once. Stars, unknowns and out-of-dict
        // tokens map to NONE: they can equal no constant key token.
        auto.ltoks.clear();
        for &tok in ids {
            auto.ltoks.push(match self.dict.binary_search(&tok) {
                Ok(lt) => lt as u32,
                Err(_) => NONE,
            });
        }
        // Exact phase: every terminal reached is a live instance.
        let exact = match &self.machine {
            Machine::Dense(dfa) => dfa.walk(&auto.ltoks),
            Machine::Frontier(nfa) => nfa.walk(&auto.ltoks, &mut auto.frontier),
        };
        if exact != NONE {
            return AutoMatch::Exact(self.keys[exact as usize]);
        }
        // Scored phase on dense arrays with touched-list resets.
        let n = ids.len();
        if auto.counts.len() < self.dict.len() {
            auto.counts.resize(self.dict.len(), 0);
        }
        if auto.overlap.len() < self.keys.len() {
            auto.overlap.resize(self.keys.len(), 0);
        }
        for &lt in &auto.ltoks {
            if lt != NONE {
                if auto.counts[lt as usize] == 0 {
                    auto.touched_tokens.push(lt);
                }
                auto.counts[lt as usize] += 1;
            }
        }
        for &lt in &auto.touched_tokens {
            let cm = auto.counts[lt as usize];
            let (lo, hi) = (
                self.post_start[lt as usize] as usize,
                self.post_start[lt as usize + 1] as usize,
            );
            for &(lk, ck) in &self.postings[lo..hi] {
                if auto.overlap[lk as usize] == 0 {
                    auto.touched_keys.push(lk);
                }
                auto.overlap[lk as usize] += ck.min(cm);
            }
        }
        auto.cands.clear();
        for &lk in &auto.touched_keys {
            let bound =
                (self.stars[lk as usize] as usize + auto.overlap[lk as usize] as usize).min(n);
            if bound >= self.required {
                auto.cands.push((lk, bound));
            }
        }
        for &lk in &self.high_star {
            if auto.overlap[lk as usize] == 0 {
                // stars ≥ required and stars ≤ len = n, so always a candidate.
                auto.cands.push((lk, self.stars[lk as usize] as usize));
            }
        }
        // Reset dense scratch before any early return below.
        for &lt in &auto.touched_tokens {
            auto.counts[lt as usize] = 0;
        }
        auto.touched_tokens.clear();
        for &lk in &auto.touched_keys {
            auto.overlap[lk as usize] = 0;
        }
        auto.touched_keys.clear();
        // Ascending local key == ascending global key: ties resolve to the
        // lowest id exactly as in the live matcher.
        auto.cands.sort_unstable_by_key(|&(lk, _)| lk);
        let mut best: Option<(usize, u32)> = None;
        for &(lk, bound) in auto.cands.iter() {
            if best.is_some_and(|(s, _)| bound <= s) {
                continue;
            }
            let key = &self.key_toks[lk as usize * self.len..(lk as usize + 1) * self.len];
            let pos = positional_matches_wild_ids(key, ids);
            let score = if pos == bound {
                pos
            } else {
                lcs_len_wild_ids(key, ids)
            };
            if score >= self.required && best.is_none_or(|(s, _)| score > s) {
                best = Some((score, lk));
            }
        }
        match best {
            Some((_, lk)) => AutoMatch::Scored(self.keys[lk as usize]),
            None => AutoMatch::Miss,
        }
    }

    // lint: ingest-hot(end)
}

impl Nfa {
    /// Build the garbage-free trie over local token ids. Terminals hold the
    /// lowest local key ending at the node (keys are inserted in ascending
    /// order, so first write wins).
    fn build(len: usize, nkeys: usize, key_toks: &[TokenId], dict: &[TokenId]) -> Nfa {
        struct Node {
            edges: BTreeMap<u32, u32>,
            star: u32,
            terminal: u32,
        }
        let mut nodes: Vec<Node> = vec![Node {
            edges: BTreeMap::new(),
            star: NONE,
            terminal: NONE,
        }];
        for lk in 0..nkeys {
            let mut at = 0usize;
            for &tok in &key_toks[lk * len..(lk + 1) * len] {
                let lt = if tok == STAR_ID {
                    NONE
                } else {
                    dict.binary_search(&tok).expect("token in dictionary") as u32
                };
                let existing = if lt == NONE {
                    nodes[at].star
                } else {
                    nodes[at].edges.get(&lt).copied().unwrap_or(NONE)
                };
                let child = if existing == NONE {
                    let new_id = nodes.len() as u32;
                    nodes.push(Node {
                        edges: BTreeMap::new(),
                        star: NONE,
                        terminal: NONE,
                    });
                    if lt == NONE {
                        nodes[at].star = new_id;
                    } else {
                        nodes[at].edges.insert(lt, new_id);
                    }
                    new_id
                } else {
                    existing
                };
                at = child as usize;
            }
            if nodes[at].terminal == NONE {
                nodes[at].terminal = lk as u32;
            }
        }
        let mut edge_start = Vec::with_capacity(nodes.len() + 1);
        let mut edges = Vec::new();
        let mut star_child = Vec::with_capacity(nodes.len());
        let mut terminal = Vec::with_capacity(nodes.len());
        edge_start.push(0u32);
        for node in &nodes {
            for (&lt, &child) in &node.edges {
                edges.push((lt, child));
            }
            edge_start.push(edges.len() as u32);
            star_child.push(node.star);
            terminal.push(node.terminal);
        }
        Nfa {
            edge_start,
            edges,
            star_child,
            terminal,
        }
    }

    #[inline]
    fn edge(&self, node: u32, lt: u32) -> u32 {
        let (lo, hi) = (
            self.edge_start[node as usize] as usize,
            self.edge_start[node as usize + 1] as usize,
        );
        match self.edges[lo..hi].binary_search_by_key(&lt, |&(l, _)| l) {
            Ok(at) => self.edges[lo + at].1,
            Err(_) => NONE,
        }
    }

    // lint: ingest-hot(begin)

    /// Frontier walk: the fallback exact phase for buckets whose DFA would
    /// blow the state budget. Returns the lowest terminating local key.
    fn walk(&self, ltoks: &[u32], frontier: &mut (Vec<u32>, Vec<u32>)) -> u32 {
        let (active, next) = frontier;
        active.clear();
        active.push(0);
        for &lt in ltoks {
            next.clear();
            for &node in active.iter() {
                if lt != NONE {
                    let via = self.edge(node, lt);
                    if via != NONE && !next.contains(&via) {
                        next.push(via);
                    }
                }
                let star = self.star_child[node as usize];
                if star != NONE && !next.contains(&star) {
                    next.push(star);
                }
            }
            if next.is_empty() {
                return NONE;
            }
            std::mem::swap(active, next);
        }
        let mut best = NONE;
        for &node in active.iter() {
            best = best.min(self.terminal[node as usize]);
        }
        best
    }

    // lint: ingest-hot(end)
}

impl Dfa {
    /// Subset construction over the trie. Wildcard children become the
    /// per-state default transition and are folded into every labelled
    /// transition (a message token matches a key's constant *or* its `*`).
    /// Returns `None` when the state or edge budget is exceeded.
    fn determinise(nfa: &Nfa) -> Option<Dfa> {
        let (max_states, max_edges) = dfa_budget(nfa.star_child.len(), nfa.edges.len());
        let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut members: Vec<Vec<u32>> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();
        let start = vec![0u32];
        ids.insert(start.clone(), 0);
        members.push(start);
        queue.push(0);
        let mut edge_start = vec![0u32];
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut star_next: Vec<u32> = Vec::new();
        let mut terminal: Vec<u32> = Vec::new();
        let mut qi = 0usize;
        // `labels` reused across states: distinct outgoing labels of the set.
        let mut labels: Vec<u32> = Vec::new();
        while qi < queue.len() {
            let state = queue[qi] as usize;
            qi += 1;
            // members are processed in BFS order, so all states of one
            // depth are numbered before any of the next; the tables below
            // are pushed in that same order.
            let set = members[state].clone();
            labels.clear();
            for &node in &set {
                let (lo, hi) = (
                    nfa.edge_start[node as usize] as usize,
                    nfa.edge_start[node as usize + 1] as usize,
                );
                for &(lt, _) in &nfa.edges[lo..hi] {
                    labels.push(lt);
                }
            }
            labels.sort_unstable();
            labels.dedup();
            // Star-only successor set (the default transition).
            let mut star_set: Vec<u32> = set
                .iter()
                .map(|&n| nfa.star_child[n as usize])
                .filter(|&c| c != NONE)
                .collect();
            star_set.sort_unstable();
            star_set.dedup();
            let intern_set = |s: Vec<u32>,
                              ids: &mut HashMap<Vec<u32>, u32>,
                              members: &mut Vec<Vec<u32>>,
                              queue: &mut Vec<u32>|
             -> u32 {
                if s.is_empty() {
                    return NONE;
                }
                if let Some(&id) = ids.get(&s) {
                    return id;
                }
                let id = members.len() as u32;
                ids.insert(s.clone(), id);
                members.push(s);
                queue.push(id);
                id
            };
            let sn = intern_set(star_set.clone(), &mut ids, &mut members, &mut queue);
            star_next.push(sn);
            for &lt in &labels {
                let mut tset = star_set.clone();
                for &node in &set {
                    let via = nfa.edge(node, lt);
                    if via != NONE {
                        tset.push(via);
                    }
                }
                tset.sort_unstable();
                tset.dedup();
                let tid = intern_set(tset, &mut ids, &mut members, &mut queue);
                edges.push((lt, tid));
            }
            edge_start.push(edges.len() as u32);
            let mut term = NONE;
            for &node in &set {
                term = term.min(nfa.terminal[node as usize]);
            }
            terminal.push(term);
            if members.len() > max_states || edges.len() > max_edges {
                return None;
            }
        }
        Some(Dfa {
            edge_start,
            edges,
            star_next,
            terminal,
        })
    }

    // lint: ingest-hot(begin)

    /// One transition per message token: binary search the state's sorted
    /// edge run, falling back to the wildcard default. Returns the lowest
    /// terminating local key, or `NONE`.
    #[inline]
    fn walk(&self, ltoks: &[u32]) -> u32 {
        let mut state = 0u32;
        for &lt in ltoks {
            let next = if lt == NONE {
                self.star_next[state as usize]
            } else {
                let (lo, hi) = (
                    self.edge_start[state as usize] as usize,
                    self.edge_start[state as usize + 1] as usize,
                );
                match self.edges[lo..hi].binary_search_by_key(&lt, |&(l, _)| l) {
                    Ok(at) => self.edges[lo + at].1,
                    Err(_) => self.star_next[state as usize],
                }
            };
            if next == NONE {
                return NONE;
            }
            state = next;
        }
        self.terminal[state as usize]
    }

    // lint: ingest-hot(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Interner;

    fn keyset(keys: &[&str]) -> (Vec<Vec<TokenId>>, Interner) {
        let mut it = Interner::new();
        let ikeys = keys
            .iter()
            .map(|k| k.split_whitespace().map(|t| it.intern(t)).collect())
            .collect();
        (ikeys, it)
    }

    fn req(t: f64) -> impl Fn(usize) -> usize {
        move |n| (n as f64 / t).ceil() as usize
    }

    fn ids(it: &Interner, msg: &str) -> Vec<TokenId> {
        msg.split_whitespace()
            .map(|t| it.lookup(t).unwrap_or(crate::intern::UNKNOWN_ID))
            .collect()
    }

    #[test]
    fn exact_instance_hits_lowest_key() {
        let (ikeys, it) = keyset(&["a * c", "a b c", "x y z"]);
        let auto = KeyAutomaton::compile(&ikeys, &req(1.7));
        // "a b c" instantiates both key 0 (via *) and key 1 — lowest wins.
        assert_eq!(auto.match_ids(&ids(&it, "a b c")), AutoMatch::Exact(0));
        assert_eq!(auto.match_ids(&ids(&it, "x y z")), AutoMatch::Exact(2));
        assert_eq!(auto.match_ids(&ids(&it, "a q c")), AutoMatch::Exact(0));
    }

    #[test]
    fn scored_phase_matches_near_misses() {
        let (ikeys, it) = keyset(&["read block b1 from disk zero"]);
        let auto = KeyAutomaton::compile(&ikeys, &req(1.7)); // 6 toks → need 4
        assert_eq!(
            auto.match_ids(&ids(&it, "read block b1 from cable one")),
            AutoMatch::Scored(0)
        );
        assert_eq!(auto.match_ids(&ids(&it, "w x y z u v")), AutoMatch::Miss);
    }

    #[test]
    fn length_mismatch_is_a_miss() {
        let (ikeys, it) = keyset(&["a b c"]);
        let auto = KeyAutomaton::compile(&ikeys, &req(1.7));
        assert_eq!(auto.match_ids(&ids(&it, "a b")), AutoMatch::Miss);
        assert_eq!(auto.match_ids(&ids(&it, "a b c d")), AutoMatch::Miss);
        assert_eq!(auto.match_ids(&[]), AutoMatch::Miss);
    }

    #[test]
    fn empty_key_matches_empty_message() {
        let (mut ikeys, it) = keyset(&["a b"]);
        ikeys.push(Vec::new());
        let auto = KeyAutomaton::compile(&ikeys, &req(1.7));
        assert_eq!(auto.match_ids(&[]), AutoMatch::Exact(1));
        drop(it);
    }

    #[test]
    fn stats_report_dense_buckets() {
        let (ikeys, _it) = keyset(&["a b c", "a b d", "p q"]);
        let auto = KeyAutomaton::compile(&ikeys, &req(1.7));
        let s = auto.stats();
        assert_eq!(s.buckets, 2);
        assert_eq!(s.keys, 3);
        assert!(s.dense_buckets >= 1);
        assert!(s.states > 0);
    }

    #[test]
    fn star_heavy_keys_stay_correct() {
        // Keys that are mostly stars exercise high_star candidates and the
        // default transitions.
        let (ikeys, it) = keyset(&["* * * end", "* * * fin", "a b c end"]);
        let auto = KeyAutomaton::compile(&ikeys, &req(1.7)); // 4 toks → need 3
        assert_eq!(auto.match_ids(&ids(&it, "q r s end")), AutoMatch::Exact(0));
        assert_eq!(auto.match_ids(&ids(&it, "q r s fin")), AutoMatch::Exact(1));
        // Unknown-token probe: stars still carry it over the threshold.
        assert_eq!(
            auto.match_ids(&ids(&it, "zz yy xx ww")),
            AutoMatch::Scored(0)
        );
    }
}
