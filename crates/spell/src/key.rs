//! Log keys — the positional abstraction of log messages.
//!
//! A *log key* is a log printing statement abstracted from its messages: the
//! constant fields keep their text, the variable fields are replaced by `*`
//! (paper §2.1). Each key additionally remembers the first concrete message
//! it was extracted from — the *sample message* — because POS tagging of a
//! key is performed through its sample (paper §3, Fig. 3).

use serde::{Deserialize, Serialize};

/// Stable identifier of a log key within one [`crate::SpellParser`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeyId(pub u32);

impl std::fmt::Display for KeyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// The `*` placeholder used in key token positions holding variable fields.
pub const STAR: &str = "*";

/// A log key: constant tokens plus `*` placeholders, with a sample message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogKey {
    /// Identifier of this key.
    pub id: KeyId,
    /// Key tokens; variable positions hold [`STAR`].
    pub tokens: Vec<String>,
    /// Tokens of the first concrete message matched to this key.
    pub sample: Vec<String>,
    /// How many messages have matched this key.
    pub count: u64,
}

impl LogKey {
    /// Number of constant (non-`*`) tokens.
    pub fn constant_len(&self) -> usize {
        self.tokens.iter().filter(|t| *t != STAR).count()
    }

    /// Indices of the variable (`*`) positions.
    pub fn variable_positions(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (t == STAR).then_some(i))
            .collect()
    }

    /// Render the key as a space-separated string (`"* MapTask metrics system"`).
    pub fn render(&self) -> String {
        self.tokens.join(" ")
    }

    /// Render the sample message as a space-separated string.
    pub fn render_sample(&self) -> String {
        self.sample.join(" ")
    }

    /// `true` if `message_tokens` is an instance of this key: equal length
    /// and equal at every constant position.
    pub fn matches(&self, message_tokens: &[String]) -> bool {
        self.tokens.len() == message_tokens.len()
            && self
                .tokens
                .iter()
                .zip(message_tokens)
                .all(|(k, m)| k == STAR || k == m)
    }

    /// Extract the values at the variable positions of `message_tokens`.
    /// Returns `None` if the message is not an instance of this key.
    pub fn extract_variables(&self, message_tokens: &[String]) -> Option<Vec<String>> {
        if !self.matches(message_tokens) {
            return None;
        }
        Some(
            self.tokens
                .iter()
                .zip(message_tokens)
                .filter(|(k, _)| *k == STAR)
                .map(|(_, m)| m.clone())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn key(tokens: &str, sample: &str) -> LogKey {
        LogKey {
            id: KeyId(0),
            tokens: toks(tokens),
            sample: toks(sample),
            count: 1,
        }
    }

    #[test]
    fn matching_and_extraction() {
        let k = key(
            "* freed by fetcher # * in *",
            "host1:13562 freed by fetcher # 1 in 4ms",
        );
        let msg = toks("host2:13562 freed by fetcher # 7 in 9ms");
        assert!(k.matches(&msg));
        assert_eq!(
            k.extract_variables(&msg).unwrap(),
            ["host2:13562", "7", "9ms"]
        );
    }

    #[test]
    fn mismatched_constant_rejected() {
        let k = key(
            "* freed by fetcher # * in *",
            "host1:13562 freed by fetcher # 1 in 4ms",
        );
        assert!(!k.matches(&toks("host2:13562 taken by fetcher # 7 in 9ms")));
        assert!(!k.matches(&toks("host2:13562 freed by fetcher # 7")));
    }

    #[test]
    fn positions_and_lengths() {
        let k = key(
            "* freed by fetcher # * in *",
            "h freed by fetcher # 1 in 4ms",
        );
        assert_eq!(k.constant_len(), 5);
        assert_eq!(k.variable_positions(), [0, 5, 7]);
        assert_eq!(k.render(), "* freed by fetcher # * in *");
    }
}
