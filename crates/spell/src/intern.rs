//! Token interning — the hot-path representation of log tokens.
//!
//! Spell compares tokens millions of times while matching messages against
//! keys; comparing interned `u32` ids instead of `String`s removes both the
//! pointer chase and the byte-wise comparison from the inner LCS loops. The
//! interner is append-only: ids are dense indices into a string table, and
//! [`STAR_ID`] (the wildcard `*`) is always id 0.
//!
//! Read-only lookups (detection phase) map never-seen tokens to
//! [`UNKNOWN_ID`], a sentinel that compares unequal to every interned key
//! token — exactly the behaviour of a fresh string no key contains.
//!
//! The table is a hand-rolled open-addressing map (FNV-1a over the token
//! bytes, splitmix64-finalised, linear probing) instead of
//! `HashMap<String, u32>` for two reasons:
//!
//! * **interning allocates once, not twice** — the map stores indices into
//!   the string table, so a new token costs exactly one `String`; the old
//!   `HashMap` keyed by owned strings cloned every new token a second time;
//! * **lookups take `&[u8]` and never allocate** — the zero-copy ingest
//!   path resolves tokenizer spans straight out of the line buffer
//!   ([`Interner::lookup_bytes`]), with no `String` materialisation and no
//!   SipHash state; misses are answered after probing at most a handful of
//!   slots.

use crate::key::STAR;
use serde::{Deserialize, Serialize};

/// Interned token identifier. Dense index into the parser's string table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TokenId(pub u32);

/// The interned id of the wildcard token [`STAR`]; always 0.
pub const STAR_ID: TokenId = TokenId(0);

/// Sentinel for tokens never interned (read-only lookups during detection).
/// Never equal to any real id, so it can never match a constant key token.
pub const UNKNOWN_ID: TokenId = TokenId(u32::MAX);

/// Empty-slot marker in the probe table (also [`UNKNOWN_ID`]'s raw value,
/// which by construction is never a real id).
const EMPTY: u32 = u32::MAX;

/// FNV-1a 64 over the token bytes, strengthened with the splitmix64
/// finaliser so low bits are well mixed for the power-of-two table mask.
#[inline]
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Append-only string interner. `*` is interned at construction as id 0.
#[derive(Debug, Clone)]
pub struct Interner {
    /// Id → token text (the only owned copy of each token).
    strings: Vec<String>,
    /// Id → cached hash of the token bytes (avoids rehashing on growth and
    /// makes probe-time comparisons a u64 check before the byte compare).
    hashes: Vec<u64>,
    /// Open-addressing probe table of ids; power-of-two length.
    table: Vec<u32>,
    /// `table.len() - 1`.
    mask: usize,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    pub fn new() -> Interner {
        let mut it = Interner {
            strings: Vec::new(),
            hashes: Vec::new(),
            table: vec![EMPTY; 16],
            mask: 15,
        };
        let star = it.intern(STAR);
        debug_assert_eq!(star, STAR_ID);
        it
    }

    /// Intern `s`, returning its stable id. Allocates exactly one `String`
    /// when `s` is new and nothing at all when it is already interned.
    pub fn intern(&mut self, s: &str) -> TokenId {
        let h = hash_bytes(s.as_bytes());
        let mut slot = (h as usize) & self.mask;
        loop {
            let e = self.table[slot];
            if e == EMPTY {
                break;
            }
            if self.hashes[e as usize] == h && self.strings[e as usize] == s {
                return TokenId(e);
            }
            slot = (slot + 1) & self.mask;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        assert!(id != UNKNOWN_ID.0, "interner exhausted the id space");
        self.strings.push(s.to_string());
        self.hashes.push(h);
        self.table[slot] = id;
        // Grow at 7/8 load so probe chains stay short.
        if (self.strings.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        }
        TokenId(id)
    }

    fn grow(&mut self) {
        let new_len = self.table.len() * 2;
        self.table.clear();
        self.table.resize(new_len, EMPTY);
        self.mask = new_len - 1;
        for (id, &h) in self.hashes.iter().enumerate() {
            let mut slot = (h as usize) & self.mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.table[slot] = id as u32;
        }
    }

    // lint: ingest-hot(begin)

    /// Read-only lookup by byte slice; `None` for tokens never interned.
    /// The zero-copy ingest path resolves tokenizer spans through this —
    /// it performs no allocation and no string materialisation.
    #[inline]
    pub fn lookup_bytes(&self, bytes: &[u8]) -> Option<TokenId> {
        let h = hash_bytes(bytes);
        let mut slot = (h as usize) & self.mask;
        loop {
            let e = self.table[slot];
            if e == EMPTY {
                return None;
            }
            if self.hashes[e as usize] == h && self.strings[e as usize].as_bytes() == bytes {
                return Some(TokenId(e));
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Read-only lookup; `None` for tokens never interned.
    #[inline]
    pub fn lookup(&self, s: &str) -> Option<TokenId> {
        self.lookup_bytes(s.as_bytes())
    }

    // lint: ingest-hot(end)

    /// The string behind an id. Panics on [`UNKNOWN_ID`] or foreign ids.
    pub fn resolve(&self, id: TokenId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Number of interned strings (including `*`).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        // `*` is always present, so the interner is never logically empty.
        false
    }

    /// Intern every token of a message (training path).
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<TokenId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Look up every token of a message without interning (detection path);
    /// unseen tokens become [`UNKNOWN_ID`].
    pub fn lookup_all(&self, tokens: &[String]) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(tokens.len());
        self.lookup_all_into(tokens, &mut out);
        out
    }

    /// [`Interner::lookup_all`] into a caller-provided buffer (cleared
    /// first), so per-line detection loops reuse one allocation.
    pub fn lookup_all_into(&self, tokens: &[String], out: &mut Vec<TokenId>) {
        out.clear();
        out.extend(tokens.iter().map(|t| self.lookup(t).unwrap_or(UNKNOWN_ID)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_id_zero() {
        let it = Interner::new();
        assert_eq!(it.lookup(STAR), Some(STAR_ID));
        assert_eq!(it.resolve(STAR_ID), STAR);
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut it = Interner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        assert_eq!(it.intern("alpha"), a);
        assert_eq!((a.0, b.0), (1, 2));
        assert_eq!(it.len(), 3);
        assert_eq!(it.resolve(b), "beta");
    }

    #[test]
    fn lookup_all_marks_unknown() {
        let mut it = Interner::new();
        it.intern("seen");
        let ids = it.lookup_all(&["seen".into(), "unseen".into(), "*".into()]);
        assert_eq!(ids, vec![TokenId(1), UNKNOWN_ID, STAR_ID]);
    }

    #[test]
    fn lookup_bytes_agrees_with_intern() {
        let mut it = Interner::new();
        let words: Vec<String> = (0..2000).map(|i| format!("tok{i}")).collect();
        let ids: Vec<TokenId> = words.iter().map(|w| it.intern(w)).collect();
        for (w, &id) in words.iter().zip(&ids) {
            assert_eq!(it.lookup_bytes(w.as_bytes()), Some(id));
            assert_eq!(it.lookup(w), Some(id));
            assert_eq!(it.resolve(id), w);
        }
        assert_eq!(it.lookup_bytes(b"never-seen"), None);
        // Re-interning after growth keeps ids stable.
        for (w, &id) in words.iter().zip(&ids) {
            assert_eq!(it.intern(w), id);
        }
    }

    #[test]
    fn survives_many_growths() {
        let mut it = Interner::new();
        for i in 0..50_000u32 {
            it.intern(&format!("w{i}"));
        }
        assert_eq!(it.len(), 50_001);
        assert_eq!(it.lookup("w49999"), Some(TokenId(50_000)));
        assert_eq!(it.lookup("w50000"), None);
    }
}
