//! Token interning — the hot-path representation of log tokens.
//!
//! Spell compares tokens millions of times while matching messages against
//! keys; comparing interned `u32` ids instead of `String`s removes both the
//! pointer chase and the byte-wise comparison from the inner LCS loops. The
//! interner is append-only: ids are dense indices into a string table, and
//! [`STAR_ID`] (the wildcard `*`) is always id 0.
//!
//! Read-only lookups (detection phase) map never-seen tokens to
//! [`UNKNOWN_ID`], a sentinel that compares unequal to every interned key
//! token — exactly the behaviour of a fresh string no key contains.

use crate::key::STAR;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interned token identifier. Dense index into the parser's string table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TokenId(pub u32);

/// The interned id of the wildcard token [`STAR`]; always 0.
pub const STAR_ID: TokenId = TokenId(0);

/// Sentinel for tokens never interned (read-only lookups during detection).
/// Never equal to any real id, so it can never match a constant key token.
pub const UNKNOWN_ID: TokenId = TokenId(u32::MAX);

/// Append-only string interner. `*` is interned at construction as id 0.
#[derive(Debug, Clone)]
pub struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    pub fn new() -> Interner {
        let mut it = Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        };
        let star = it.intern(STAR);
        debug_assert_eq!(star, STAR_ID);
        it
    }

    /// Intern `s`, returning its stable id.
    pub fn intern(&mut self, s: &str) -> TokenId {
        if let Some(&id) = self.map.get(s) {
            return TokenId(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        assert!(id != UNKNOWN_ID.0, "interner exhausted the id space");
        self.map.insert(s.to_string(), id);
        self.strings.push(s.to_string());
        TokenId(id)
    }

    /// Read-only lookup; `None` for tokens never interned.
    pub fn lookup(&self, s: &str) -> Option<TokenId> {
        self.map.get(s).map(|&id| TokenId(id))
    }

    /// The string behind an id. Panics on [`UNKNOWN_ID`] or foreign ids.
    pub fn resolve(&self, id: TokenId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Number of interned strings (including `*`).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        // `*` is always present, so the interner is never logically empty.
        false
    }

    /// Intern every token of a message (training path).
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<TokenId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Look up every token of a message without interning (detection path);
    /// unseen tokens become [`UNKNOWN_ID`].
    pub fn lookup_all(&self, tokens: &[String]) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(tokens.len());
        self.lookup_all_into(tokens, &mut out);
        out
    }

    /// [`Interner::lookup_all`] into a caller-provided buffer (cleared
    /// first), so per-line detection loops reuse one allocation.
    pub fn lookup_all_into(&self, tokens: &[String], out: &mut Vec<TokenId>) {
        out.clear();
        out.extend(tokens.iter().map(|t| self.lookup(t).unwrap_or(UNKNOWN_ID)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_id_zero() {
        let it = Interner::new();
        assert_eq!(it.lookup(STAR), Some(STAR_ID));
        assert_eq!(it.resolve(STAR_ID), STAR);
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut it = Interner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        assert_eq!(it.intern("alpha"), a);
        assert_eq!((a.0, b.0), (1, 2));
        assert_eq!(it.len(), 3);
        assert_eq!(it.resolve(b), "beta");
    }

    #[test]
    fn lookup_all_marks_unknown() {
        let mut it = Interner::new();
        it.intern("seen");
        let ids = it.lookup_all(&["seen".into(), "unseen".into(), "*".into()]);
        assert_eq!(ids, vec![TokenId(1), UNKNOWN_ID, STAR_ID]);
    }
}
