//! # spell — streaming log-key extraction
//!
//! An implementation of Spell (Du & Li, *Spell: Streaming Parsing of System
//! Event Logs*, ICDM 2017) as used by IntelLog (HPDC 2019, §2.1/§5): raw log
//! messages stream in, and a longest-common-subsequence matcher groups them
//! under *log keys* — the printing-statement abstractions in which constant
//! fields keep their text and variable fields become `*`.
//!
//! The crate also ships the per-system log formatters (paper §5) that strip
//! timestamps, levels and emitting classes before Spell sees the message
//! body, plus a session container type used throughout the pipeline.

#![forbid(unsafe_code)]

mod automaton;
pub mod format;
mod index;
pub mod intern;
pub mod key;
pub mod lcs;
pub mod parser;
mod scratch;

pub use automaton::AutomatonStats;
pub use format::{Level, LogFormat, LogLine};
pub use intern::{Interner, TokenId, STAR_ID, UNKNOWN_ID};
pub use key::{KeyId, LogKey, STAR};
pub use lognlp::{tokenize_spans, Span};
pub use parser::{tokenize_message, LineOutcome, MatchMemo, ParseOutcome, SpellParser};

use serde::{Deserialize, Serialize};

/// A log session: the unit of workflow reconstruction and detection.
///
/// In the paper a session is the execution within one YARN container (§2.3,
/// §5). A session owns the ordered sequence of structured log lines that the
/// container produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Session {
    /// Session (container) identifier.
    pub id: String,
    /// Time-ordered log lines.
    pub lines: Vec<LogLine>,
}

impl Session {
    /// Create a session, sorting lines by timestamp (stable, so equal
    /// timestamps keep their emission order).
    pub fn new(id: impl Into<String>, mut lines: Vec<LogLine>) -> Session {
        lines.sort_by_key(|l| l.ts_ms);
        Session {
            id: id.into(),
            lines,
        }
    }

    /// Number of log messages in the session.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` if the session has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_sorts_by_timestamp() {
        let mk = |ts| LogLine {
            ts_ms: ts,
            level: Level::Info,
            source: "X".into(),
            message: format!("m{ts}"),
        };
        let s = Session::new("container_01", vec![mk(3), mk(1), mk(2)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.lines[0].ts_ms, 1);
        assert_eq!(s.lines[2].ts_ms, 3);
        assert!(!s.is_empty());
    }
}
