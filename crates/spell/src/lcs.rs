//! Longest-common-subsequence machinery for Spell.
//!
//! Spell (Du & Li, ICDM'17) matches an incoming message to the stored key
//! whose LCS with it is longest, subject to a threshold. For same-length
//! sequences (the case exercised by positional log keys) the number of
//! positionally equal tokens is a cheap lower bound on the LCS length, so
//! the parser first counts positional matches and only falls back to the
//! full O(m·n) dynamic program when the bound is inconclusive.

use crate::intern::{TokenId, STAR_ID};

/// Length of the longest common subsequence of `a` and `b`.
pub fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Rolling one-row DP: O(min(m,n)) space.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut row = vec![0usize; short.len() + 1];
    for x in long {
        let mut prev_diag = 0; // row[j-1] from the previous iteration
        for (j, y) in short.iter().enumerate() {
            let cur = row[j + 1];
            row[j + 1] = if x == y {
                prev_diag + 1
            } else {
                row[j + 1].max(row[j])
            };
            prev_diag = cur;
        }
    }
    row[short.len()]
}

/// Number of positions where same-length `a` and `b` agree. For equal-length
/// sequences this is a lower bound on [`lcs_len`].
pub fn positional_matches<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).filter(|(x, y)| x == y).count()
}

/// Positional matches where a `*` in the key matches any message token —
/// the matching semantics of a refined Spell key.
pub fn positional_matches_wild(key: &[String], msg: &[String]) -> usize {
    debug_assert_eq!(key.len(), msg.len());
    key.iter()
        .zip(msg)
        .filter(|(k, m)| k.as_str() == crate::key::STAR || k == m)
        .count()
}

/// Interned-token variant of [`positional_matches_wild`]: `u32` compares
/// instead of string compares in the hot loop.
pub fn positional_matches_wild_ids(key: &[TokenId], msg: &[TokenId]) -> usize {
    debug_assert_eq!(key.len(), msg.len());
    key.iter()
        .zip(msg)
        .filter(|&(&k, m)| k == STAR_ID || k == *m)
        .count()
}

/// Interned-token variant of [`lcs_len_wild`]. Runs on a per-thread DP row
/// (this is the matcher's innermost loop; see `scratch.rs`).
pub fn lcs_len_wild_ids(key: &[TokenId], msg: &[TokenId]) -> usize {
    if key.is_empty() || msg.is_empty() {
        return 0;
    }
    crate::scratch::with_lcs_row(|row| {
        row.clear();
        row.resize(msg.len() + 1, 0);
        for &k in key {
            let mut prev_diag = 0;
            for (j, &m) in msg.iter().enumerate() {
                let cur = row[j + 1];
                row[j + 1] = if k == STAR_ID || k == m {
                    prev_diag + 1
                } else {
                    row[j + 1].max(row[j])
                };
                prev_diag = cur;
            }
        }
        row[msg.len()]
    })
}

/// LCS length where a `*` in the key matches any message token.
pub fn lcs_len_wild(key: &[String], msg: &[String]) -> usize {
    if key.is_empty() || msg.is_empty() {
        return 0;
    }
    let mut row = vec![0usize; msg.len() + 1];
    for k in key {
        let mut prev_diag = 0;
        for (j, m) in msg.iter().enumerate() {
            let cur = row[j + 1];
            row[j + 1] = if k.as_str() == crate::key::STAR || k == m {
                prev_diag + 1
            } else {
                row[j + 1].max(row[j])
            };
            prev_diag = cur;
        }
    }
    row[msg.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basics() {
        assert_eq!(lcs_len(&['a', 'b', 'c'], &['a', 'x', 'c']), 2);
        assert_eq!(lcs_len(&['a', 'b', 'c'], &['a', 'b', 'c']), 3);
        assert_eq!(lcs_len::<char>(&[], &['a']), 0);
        assert_eq!(lcs_len(&['x'], &['y']), 0);
    }

    #[test]
    fn lcs_subsequence_not_substring() {
        assert_eq!(lcs_len(&[1, 2, 3, 4], &[1, 9, 3, 9, 4]), 3);
    }

    #[test]
    fn id_variants_agree_with_string_variants() {
        let mut it = crate::intern::Interner::new();
        let key = ["*", "freed", "by", "fetcher", "*"].map(String::from);
        let msg = ["host1", "freed", "by", "worker", "9"].map(String::from);
        let key_ids: Vec<_> = key.iter().map(|t| it.intern(t)).collect();
        let msg_ids: Vec<_> = msg.iter().map(|t| it.intern(t)).collect();
        assert_eq!(
            positional_matches_wild_ids(&key_ids, &msg_ids),
            positional_matches_wild(&key, &msg)
        );
        assert_eq!(
            lcs_len_wild_ids(&key_ids, &msg_ids),
            lcs_len_wild(&key, &msg)
        );
        // a star in the *message* is matched only by a star in the key
        let probe = ["*", "freed", "by", "*", "*"].map(String::from);
        let probe_ids: Vec<_> = probe.iter().map(|t| it.intern(t)).collect();
        assert_eq!(
            lcs_len_wild_ids(&key_ids, &probe_ids),
            lcs_len_wild(&key, &probe)
        );
    }

    #[test]
    fn positional_lower_bound() {
        let a = ["r", "x", "c", "d"];
        let b = ["r", "y", "c", "z"];
        let p = positional_matches(&a, &b);
        assert_eq!(p, 2);
        assert!(lcs_len(&a, &b) >= p);
    }
}
