//! Per-thread reusable scratch buffers for the matching hot path.
//!
//! Matching one message runs an LCS dynamic program, a trie walk and an
//! inverted-index scoring pass — each of which used to allocate its working
//! vectors/maps per call. On the persistent executor (vendored rayon) the
//! threads running these loops are long-lived, so one warm buffer per
//! thread amortises to zero allocations per message.
//!
//! Every helper here hands the buffer to a closure (cleared by the callee
//! as needed) rather than leaking `RefCell` guards into signatures. The
//! closures are leaves — none of them re-enters the same helper — so the
//! `borrow_mut` calls cannot conflict.

use crate::intern::TokenId;
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    /// DP row for the wildcard-LCS computation.
    static LCS_ROW: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Active/next node frontiers for the trie walk.
    static WALK: RefCell<(Vec<u32>, Vec<u32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Token-count and key-overlap maps for inverted-index scoring.
    static SCORED: RefCell<ScoredScratch> = RefCell::new(ScoredScratch::default());
    /// Interned-id buffer for read-only message lookups.
    static IDS: RefCell<Vec<TokenId>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
pub(crate) struct ScoredScratch {
    /// Token → multiplicity in the message being scored.
    pub(crate) msg_counts: HashMap<TokenId, u32>,
    /// Key index → LCS upper-bound contribution from postings overlap.
    pub(crate) overlap: HashMap<u32, usize>,
}

pub(crate) fn with_lcs_row<R>(f: impl FnOnce(&mut Vec<usize>) -> R) -> R {
    LCS_ROW.with(|cell| f(&mut cell.borrow_mut()))
}

pub(crate) fn with_walk<R>(f: impl FnOnce(&mut Vec<u32>, &mut Vec<u32>) -> R) -> R {
    WALK.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (active, next) = &mut *guard;
        f(active, next)
    })
}

pub(crate) fn with_scored<R>(f: impl FnOnce(&mut ScoredScratch) -> R) -> R {
    SCORED.with(|cell| f(&mut cell.borrow_mut()))
}

pub(crate) fn with_ids<R>(f: impl FnOnce(&mut Vec<TokenId>) -> R) -> R {
    IDS.with(|cell| f(&mut cell.borrow_mut()))
}
