//! Per-thread reusable scratch buffers for the matching hot path.
//!
//! Matching one message runs an LCS dynamic program, a trie walk and an
//! inverted-index scoring pass — each of which used to allocate its working
//! vectors/maps per call. On the persistent executor (vendored rayon) the
//! threads running these loops are long-lived, so one warm buffer per
//! thread amortises to zero allocations per message.
//!
//! Every helper here hands the buffer to a closure (cleared by the callee
//! as needed) rather than leaking `RefCell` guards into signatures. The
//! closures are leaves — none of them re-enters the same helper — so the
//! `borrow_mut` calls cannot conflict.

use crate::intern::TokenId;
use lognlp::Span;
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    /// DP row for the wildcard-LCS computation.
    static LCS_ROW: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// Active/next node frontiers for the trie walk.
    static WALK: RefCell<(Vec<u32>, Vec<u32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    /// Token-count and key-overlap maps for inverted-index scoring.
    static SCORED: RefCell<ScoredScratch> = RefCell::new(ScoredScratch::default());
    /// Interned-id buffer for read-only message lookups.
    static IDS: RefCell<Vec<TokenId>> = const { RefCell::new(Vec::new()) };
    /// Span + id buffers for the zero-copy line ingest path.
    static LINE: RefCell<LineScratch> = const { RefCell::new(LineScratch::new()) };
    /// Exact-candidate output buffer for the trie walk.
    static EXACT: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    /// Scored-candidate output buffer for inverted-index pruning.
    static CANDS: RefCell<Vec<(u32, usize)>> = const { RefCell::new(Vec::new()) };
    /// Dense working set for the compiled key automaton.
    static AUTO: RefCell<AutoScratch> = const { RefCell::new(AutoScratch::new()) };
}

#[derive(Default)]
pub(crate) struct ScoredScratch {
    /// Token → multiplicity in the message being scored.
    pub(crate) msg_counts: HashMap<TokenId, u32>,
    /// Key index → LCS upper-bound contribution from postings overlap.
    pub(crate) overlap: HashMap<u32, usize>,
}

/// Reusable buffers for tokenising and interning one raw line without
/// allocating: byte spans into the line, then interned ids.
pub(crate) struct LineScratch {
    pub(crate) spans: Vec<Span>,
    pub(crate) ids: Vec<TokenId>,
}

impl LineScratch {
    const fn new() -> LineScratch {
        LineScratch {
            spans: Vec::new(),
            ids: Vec::new(),
        }
    }
}

/// Dense working set for [`crate::automaton::KeyAutomaton`] matching. The
/// `counts`/`overlap` arrays are sized to the largest bucket seen on this
/// thread and reset via the touched lists, so steady-state matching never
/// hashes and never allocates.
pub(crate) struct AutoScratch {
    /// Message tokens mapped to bucket-local dictionary ids (`NONE` for
    /// stars, unknowns and out-of-dictionary tokens).
    pub(crate) ltoks: Vec<u32>,
    /// Local token id → multiplicity in the message (dense, touched-reset).
    pub(crate) counts: Vec<u32>,
    /// Local token ids with nonzero `counts`.
    pub(crate) touched_tokens: Vec<u32>,
    /// Local key id → postings overlap bound contribution (dense,
    /// touched-reset).
    pub(crate) overlap: Vec<u32>,
    /// Local key ids with nonzero `overlap`.
    pub(crate) touched_keys: Vec<u32>,
    /// (local key, LCS upper bound) candidates surviving the prune.
    pub(crate) cands: Vec<(u32, usize)>,
    /// Active/next NFA frontiers for the fallback trie walk.
    pub(crate) frontier: (Vec<u32>, Vec<u32>),
}

impl AutoScratch {
    const fn new() -> AutoScratch {
        AutoScratch {
            ltoks: Vec::new(),
            counts: Vec::new(),
            touched_tokens: Vec::new(),
            overlap: Vec::new(),
            touched_keys: Vec::new(),
            cands: Vec::new(),
            frontier: (Vec::new(), Vec::new()),
        }
    }
}

pub(crate) fn with_lcs_row<R>(f: impl FnOnce(&mut Vec<usize>) -> R) -> R {
    LCS_ROW.with(|cell| f(&mut cell.borrow_mut()))
}

pub(crate) fn with_walk<R>(f: impl FnOnce(&mut Vec<u32>, &mut Vec<u32>) -> R) -> R {
    WALK.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (active, next) = &mut *guard;
        f(active, next)
    })
}

pub(crate) fn with_scored<R>(f: impl FnOnce(&mut ScoredScratch) -> R) -> R {
    SCORED.with(|cell| f(&mut cell.borrow_mut()))
}

pub(crate) fn with_ids<R>(f: impl FnOnce(&mut Vec<TokenId>) -> R) -> R {
    IDS.with(|cell| f(&mut cell.borrow_mut()))
}

pub(crate) fn with_line<R>(f: impl FnOnce(&mut LineScratch) -> R) -> R {
    LINE.with(|cell| f(&mut cell.borrow_mut()))
}

pub(crate) fn with_exact<R>(f: impl FnOnce(&mut Vec<u32>) -> R) -> R {
    EXACT.with(|cell| f(&mut cell.borrow_mut()))
}

pub(crate) fn with_cands<R>(f: impl FnOnce(&mut Vec<(u32, usize)>) -> R) -> R {
    CANDS.with(|cell| f(&mut cell.borrow_mut()))
}

pub(crate) fn with_auto<R>(f: impl FnOnce(&mut AutoScratch) -> R) -> R {
    AUTO.with(|cell| f(&mut cell.borrow_mut()))
}
