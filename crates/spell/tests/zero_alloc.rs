//! Literal zero-allocation proof for the byte-level ingest path.
//!
//! The binary installs a counting global allocator (same pattern as
//! `obs/tests/metrics_props.rs`) so the claims in `parser.rs` are checked
//! as stated, not approximated:
//!
//! * `match_line` against a frozen parser performs **zero** heap
//!   allocations — tokenise to spans, intern-lookup by byte slice, and
//!   the compiled automaton all run out of per-thread scratch;
//! * `parse_line` in the steady state (every line matches an existing
//!   key, nothing flips to `*`) performs **zero** heap allocations —
//!   founding or refining a key is the only allocating path, and neither
//!   occurs once the key set has converged;
//! * the `lognlp::format` adapters normalise foreign lines (HDFS/BGL
//!   header, RFC-3164 syslog, JSON) with **zero** heap allocations — the
//!   returned record borrows from the input — and feeding an adapted
//!   message to the frozen matcher stays allocation-free end to end.
//!
//! Both tests warm the per-thread scratch first: scratch buffers and the
//! scoring hash maps grow to their high-water mark on the first pass and
//! are reused (cleared, capacity kept) afterwards. The measured passes run
//! the exact same probes, so any allocation they observe is a genuine
//! per-line cost, not warmup.

use spell::SpellParser;
use std::alloc::{GlobalAlloc, Layout, System};
// lint: allow(std-sync) — the global allocator runs underneath everything,
// including the sync facade's model-check hooks; counting allocations
// through a facade atomic would re-enter the scheduler from inside alloc.
use std::sync::atomic::{AtomicU64, Ordering};
// lint: allow(std-sync) — test-local serialisation of the global counter;
// routing it through the facade would deadlock under the model checker.
use std::sync::{Mutex, MutexGuard, OnceLock};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to `System`, which upholds the
// GlobalAlloc contract; the only addition is a relaxed counter bump, which
// neither allocates nor unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwarded to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: forwarded to `System.dealloc`; `ptr`/`layout` come straight
    // from the caller, whose contract matches System's.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwarded to `System.realloc` with the caller's arguments.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: forwarded to `System.alloc_zeroed` with the caller's layout.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The allocation counter is process-global; tests measuring it must not
/// overlap with each other's allocations.
fn lock() -> MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    let l = L.get_or_init(|| Mutex::new(()));
    l.lock().unwrap_or_else(|e| e.into_inner())
}

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Training corpus: several templates, two instances each so real `*`
/// positions exist, plus host:port and bracket shapes so the span
/// tokeniser's edge cases are on the measured path.
fn corpus() -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..12u32 {
        lines.push(format!("Starting task {i} in stage 0 on host{i}:13562"));
        lines.push(format!(
            "Finished task {i} in stage 0 and sent {} bytes to driver",
            i * 97
        ));
        lines.push(format!(
            "[fetcher # {i}] read {} bytes from map-output for attempt_{i}",
            i * 31
        ));
        lines.push(format!("Registering block manager endpoint on host{i}"));
    }
    lines
}

/// Probe mix for the read path: exact instances, fresh parameter values
/// (unseen ids → UNKNOWN_ID), a near-miss, and a fully unknown line.
fn probes() -> Vec<String> {
    let mut p = corpus();
    p.push("Starting task 9999 in stage 7 on host9999:13562".into());
    p.push("Finishing task 3 in stage 0 and sent 42 bytes to driver".into());
    p.push("completely unrelated text never seen in training".into());
    p
}

#[test]
fn frozen_match_line_is_allocation_free() {
    let _guard = lock();
    let mut parser = SpellParser::default();
    for line in corpus() {
        parser.parse_line(&line);
    }
    parser.freeze();
    assert!(parser.is_frozen());
    let probes = probes();

    // Warmup: grow every scratch buffer to its high-water mark and record
    // the expected verdicts.
    let expected: Vec<Option<spell::KeyId>> = probes.iter().map(|l| parser.match_line(l)).collect();
    assert!(
        expected.iter().filter(|v| v.is_some()).count() >= corpus().len(),
        "probe mix must exercise the hit path"
    );
    assert!(
        expected.iter().any(|v| v.is_none()),
        "probe mix must exercise the miss path"
    );

    let before = allocations();
    for _ in 0..3 {
        for (line, want) in probes.iter().zip(&expected) {
            assert_eq!(parser.match_line(line), *want);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "frozen match_line allocated on the steady-state read path"
    );
}

/// The probe corpus rendered in each foreign syntax, with headers typical
/// of that format. Message bodies are the exact probe lines, so the
/// adapted ingest exercises the same hit/miss mix as the native test.
fn foreign_probes() -> Vec<(lognlp::format::AdapterKind, Vec<String>)> {
    use lognlp::format::AdapterKind;
    let probes = probes();
    vec![
        (
            AdapterKind::Hdfs,
            probes
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    format!(
                        "190622 01{:02}{:02} 148 INFO spell.Task: {m}",
                        i / 60,
                        i % 60
                    )
                })
                .collect(),
        ),
        (
            AdapterKind::Syslog,
            probes
                .iter()
                .enumerate()
                .map(|(i, m)| format!("<134>Jun 22 01:{:02}:{:02} host3 Task: {m}", i / 60, i % 60))
                .collect(),
        ),
        (
            AdapterKind::Json,
            probes
                .iter()
                .enumerate()
                .map(|(i, m)| format!(r#"{{"ts":{i},"level":"INFO","source":"Task","msg":"{m}"}}"#))
                .collect(),
        ),
    ]
}

#[test]
fn adapted_ingest_is_allocation_free() {
    let _guard = lock();
    let mut parser = SpellParser::default();
    for line in corpus() {
        parser.parse_line(&line);
    }
    parser.freeze();
    let foreign = foreign_probes();

    // Warmup: verify every foreign line adapts to its probe message and
    // record the expected verdicts, growing the matcher scratch.
    let mut expected: Vec<Vec<Option<spell::KeyId>>> = Vec::new();
    for (kind, lines) in &foreign {
        let adapter = kind.adapter();
        let mut verdicts = Vec::new();
        for (line, probe) in lines.iter().zip(probes()) {
            let rec = adapter
                .parse_record(line)
                .unwrap_or_else(|e| panic!("{kind:?} rejected {line:?}: {e}"));
            assert_eq!(rec.message, probe, "{kind:?} mangled the message body");
            verdicts.push(parser.match_line(rec.message));
        }
        assert!(
            verdicts.iter().filter(|v| v.is_some()).count() >= corpus().len(),
            "{kind:?}: adapted probe mix must exercise the hit path"
        );
        expected.push(verdicts);
    }

    let before = allocations();
    for _ in 0..3 {
        for ((kind, lines), verdicts) in foreign.iter().zip(&expected) {
            let adapter = kind.adapter();
            for (line, want) in lines.iter().zip(verdicts) {
                let rec = match adapter.parse_record(line) {
                    Ok(rec) => rec,
                    Err(_) => unreachable!("validated during warmup"),
                };
                assert_eq!(parser.match_line(rec.message), *want);
            }
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "adapter normalisation + frozen match allocated on the steady state"
    );
}

#[test]
fn steady_state_parse_line_is_allocation_free() {
    let _guard = lock();
    let mut parser = SpellParser::default();
    let lines = corpus();
    // Pass 1 founds the keys; pass 2 refines the parameter positions to
    // `*` and warms the scratch. From pass 3 on nothing flips: every line
    // is an instance of a converged key.
    for _ in 0..2 {
        for line in &lines {
            parser.parse_line(line);
        }
    }
    let keys_before = parser.len();

    let before = allocations();
    for _ in 0..3 {
        for line in &lines {
            let out = parser.parse_line(line);
            assert!(!out.is_new_key);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state parse_line allocated (keys: {} -> {})",
        keys_before,
        parser.len()
    );
    assert_eq!(parser.len(), keys_before, "steady state must not grow keys");
}
