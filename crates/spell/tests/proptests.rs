//! Property-based tests for Spell invariants.

use proptest::prelude::*;
use spell::{lcs::lcs_len, SpellParser, STAR};

fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,6}"
}

fn message() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(word(), 1..12)
}

proptest! {
    /// Feeding the same message twice always lands on the same key and
    /// never creates a second key.
    #[test]
    fn deterministic_assignment(msg in message()) {
        let mut p = SpellParser::default();
        let a = p.parse_tokens(msg.clone());
        let b = p.parse_tokens(msg);
        prop_assert_eq!(a.key_id, b.key_id);
        prop_assert!(a.is_new_key);
        prop_assert!(!b.is_new_key);
        prop_assert_eq!(p.len(), 1);
    }

    /// Every parsed message matches the key it was assigned to afterwards.
    #[test]
    fn assigned_key_matches_message(msgs in prop::collection::vec(message(), 1..30)) {
        let mut p = SpellParser::default();
        for m in msgs {
            let out = p.parse_tokens(m.clone());
            prop_assert!(p.key(out.key_id).matches(&m),
                "key {:?} should match {:?}", p.key(out.key_id).tokens, m);
        }
    }

    /// Keys only ever gain stars: the constant length is non-increasing for
    /// a given key as more messages arrive.
    #[test]
    fn constant_length_monotone(msgs in prop::collection::vec(message(), 1..30)) {
        let mut p = SpellParser::default();
        let mut consts: std::collections::HashMap<spell::KeyId, usize> = Default::default();
        for m in msgs {
            let out = p.parse_tokens(m);
            let c = p.key(out.key_id).constant_len();
            if let Some(prev) = consts.insert(out.key_id, c) {
                prop_assert!(c <= prev);
            }
        }
    }

    /// The key count never exceeds the number of distinct messages fed.
    #[test]
    fn key_count_bounded(msgs in prop::collection::vec(message(), 1..40)) {
        let mut p = SpellParser::default();
        let distinct: std::collections::HashSet<_> = msgs.iter().cloned().collect();
        for m in msgs.clone() {
            p.parse_tokens(m);
        }
        prop_assert!(p.len() <= distinct.len());
        let total: u64 = p.keys().iter().map(|k| k.count).sum();
        prop_assert_eq!(total as usize, msgs.len());
    }

    /// A key's sample message is an instance of the key, and the key has a
    /// star wherever the sample and key disagree — never elsewhere.
    #[test]
    fn sample_instance_invariant(msgs in prop::collection::vec(message(), 1..30)) {
        let mut p = SpellParser::default();
        for m in msgs {
            p.parse_tokens(m);
        }
        for k in p.keys() {
            prop_assert!(k.matches(&k.sample));
            for (kt, st) in k.tokens.iter().zip(&k.sample) {
                if kt != STAR {
                    prop_assert_eq!(kt, st);
                }
            }
        }
    }

    /// LCS length is symmetric and bounded by both lengths.
    #[test]
    fn lcs_props(a in message(), b in message()) {
        let l = lcs_len(&a, &b);
        prop_assert_eq!(l, lcs_len(&b, &a));
        prop_assert!(l <= a.len().min(b.len()));
    }

    /// The indexed matcher agrees with the linear-scan reference matcher —
    /// both mid-training (after every parse, against the evolving key set)
    /// and on held-out probes containing tokens the parser never interned.
    #[test]
    fn indexed_matcher_equals_linear(
        msgs in prop::collection::vec(message(), 1..40),
        probes in prop::collection::vec(message(), 1..10),
    ) {
        let mut p = SpellParser::default();
        for m in msgs {
            p.parse_tokens(m.clone());
            prop_assert_eq!(p.match_message(&m), p.match_message_linear(&m));
        }
        for probe in probes {
            prop_assert_eq!(
                p.match_message(&probe),
                p.match_message_linear(&probe),
                "probe {:?} diverged", probe
            );
        }
    }

    /// Serialisation drops the derived index/interner state; a round-trip
    /// must reproduce the keys and the same match results.
    #[test]
    fn serde_roundtrip_equivalence(
        msgs in prop::collection::vec(message(), 1..30),
        probes in prop::collection::vec(message(), 1..8),
    ) {
        let mut p = SpellParser::default();
        for m in msgs {
            p.parse_tokens(m);
        }
        let json = serde_json::to_string(&p).unwrap();
        let q: SpellParser = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(q.keys(), p.keys());
        // Deserialised parsers arrive frozen (the serving/replay read-path
        // configuration), so this also crosses automaton vs live index.
        prop_assert!(q.is_frozen());
        for probe in probes {
            prop_assert_eq!(q.match_message(&probe), p.match_message(&probe));
        }
    }

    /// Three-way matcher equivalence: the compiled key automaton (frozen
    /// parser), the live prefix-tree + inverted index, and the linear-scan
    /// reference must return the same verdict on every probe — trained
    /// messages and held-out probes with never-interned tokens alike.
    #[test]
    fn automaton_equals_index_equals_linear(
        msgs in prop::collection::vec(message(), 1..40),
        probes in prop::collection::vec(message(), 1..10),
    ) {
        let mut p = SpellParser::default();
        for m in &msgs {
            p.parse_tokens(m.clone());
        }
        p.freeze();
        prop_assert!(p.is_frozen());
        for probe in msgs.iter().chain(&probes) {
            let ids = p.lookup_ids(probe);
            let auto = p.match_ids(&ids);
            prop_assert_eq!(
                auto, p.match_ids_index(&ids),
                "automaton vs live index diverged on {:?}", probe
            );
            prop_assert_eq!(
                auto, p.match_ids_linear(&ids),
                "automaton vs linear diverged on {:?}", probe
            );
        }
    }

    /// Training after a freeze invalidates the automaton (a stale compiled
    /// key set must never answer for a grown one), and refreezing restores
    /// verdicts identical to the reference matcher.
    #[test]
    fn training_invalidates_freeze_and_refreeze_agrees(
        before in prop::collection::vec(message(), 1..20),
        after in prop::collection::vec(message(), 1..20),
    ) {
        let mut p = SpellParser::default();
        for m in &before {
            p.parse_tokens(m.clone());
        }
        p.freeze();
        prop_assert!(p.is_frozen());
        for m in &after {
            p.parse_tokens(m.clone());
        }
        prop_assert!(!p.is_frozen(), "training must thaw the automaton");
        p.freeze();
        for probe in before.iter().chain(&after) {
            let ids = p.lookup_ids(probe);
            prop_assert_eq!(p.match_ids(&ids), p.match_ids_linear(&ids));
        }
    }

    /// The zero-alloc byte-level line path must be observationally
    /// identical to the token-vector path: same key assignments during
    /// training, same key set afterwards, same match verdicts when frozen.
    #[test]
    fn parse_line_equals_parse_message(
        msgs in prop::collection::vec(message(), 1..30),
        probes in prop::collection::vec(message(), 1..8),
    ) {
        let mut byte_path = SpellParser::default();
        let mut token_path = SpellParser::default();
        for m in &msgs {
            let line = m.join(" ");
            let a = byte_path.parse_line(&line);
            let b = token_path.parse_message(&line);
            prop_assert_eq!(a.key_id, b.key_id);
            prop_assert_eq!(a.is_new_key, b.is_new_key);
        }
        prop_assert_eq!(byte_path.keys(), token_path.keys());
        byte_path.freeze();
        for probe in msgs.iter().chain(&probes) {
            let line = probe.join(" ");
            prop_assert_eq!(
                byte_path.match_line(&line),
                token_path.match_message(probe),
                "line path diverged on {:?}", line
            );
        }
    }
}
