//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * Spell threshold `t` sweep — how key counts and parse cost move;
//! * nomenclature grouping with/without the "common last words" rule
//!   (Algorithm 1's distinguishing feature vs naive common-substring
//!   grouping);
//! * DeepLog history-length sweep — predictability of analytics logs.

use baselines::{DeepLog, DeepLogConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlasim::SystemKind;
use hwgraph::group_entities;
use intellog_bench::{train_keyseqs, training_sessions};
use spell::SpellParser;

fn ablate_spell_threshold(c: &mut Criterion) {
    let sessions = training_sessions(SystemKind::MapReduce, 3, 10);
    let messages: Vec<String> = sessions
        .iter()
        .flat_map(|s| s.lines.iter().map(|l| l.message.clone()))
        .collect();
    let mut g = c.benchmark_group("ablation_spell_threshold");
    g.sample_size(10);
    for t in [1.2f64, 1.7, 2.5] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let mut p = SpellParser::new(t);
                for m in &messages {
                    p.parse_message(m);
                }
                p.len() // higher t → more merging → fewer keys
            })
        });
    }
    g.finish();
}

fn ablate_grouping_rule(c: &mut Criterion) {
    // entities harvested from a Spark corpus
    let sessions = training_sessions(SystemKind::Spark, 4, 11);
    let (parser, _) = train_keyseqs(&sessions);
    let ex = extract::IntelExtractor::new();
    let entities: Vec<String> = parser
        .keys()
        .iter()
        .flat_map(|k| {
            ex.build(k)
                .entity_phrases()
                .into_iter()
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .collect();
    let mut g = c.benchmark_group("ablation_grouping");
    g.bench_function("algorithm1", |b| {
        b.iter(|| group_entities(entities.iter().cloned()).len())
    });
    // Algorithm 1 *without* the "common last words" rule: plain
    // longest-common-substring grouping over-merges unrelated families
    // ('block manager' + 'security manager' → one 'manager' group).
    g.bench_function("no_last_words_rule", |b| {
        b.iter(|| {
            hwgraph::group_entities_with(
                entities.iter().cloned(),
                hwgraph::GroupingOptions {
                    last_words_rule: false,
                },
            )
            .len()
        })
    });
    // naive variant: group by shared first word only (no LCP, no last-words
    // rule) — what a simple prefix-bucket approach would do
    g.bench_function("naive_first_word", |b| {
        b.iter(|| {
            let mut buckets: std::collections::BTreeMap<&str, usize> = Default::default();
            for e in &entities {
                let first = e.split(' ').next().unwrap_or("");
                *buckets.entry(first).or_insert(0) += 1;
            }
            buckets.len()
        })
    });
    g.finish();
}

fn ablate_deeplog_history(c: &mut Criterion) {
    let sessions = training_sessions(SystemKind::Spark, 4, 12);
    let (_, seqs) = train_keyseqs(&sessions);
    let mut g = c.benchmark_group("ablation_deeplog_history");
    g.sample_size(10);
    for h in [2usize, 5, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            b.iter(|| {
                let mut dl = DeepLog::new(DeepLogConfig {
                    history: h,
                    top_g: 9,
                });
                for s in &seqs {
                    dl.train_session(s);
                }
                // misses on a held-in session: interleaving noise persists
                dl.count_misses(&seqs[0])
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_spell_threshold,
    ablate_grouping_rule,
    ablate_deeplog_history
);
criterion_main!(benches);
