//! Criterion micro-benchmarks of the IntelLog pipeline stages:
//! Spell key extraction, Intel-Key construction, HW-graph training and
//! per-session detection (sequential vs rayon-parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlasim::SystemKind;
use intellog_bench::training_sessions;
use intellog_core::IntelLog;
use spell::SpellParser;

fn bench_spell(c: &mut Criterion) {
    let sessions = training_sessions(SystemKind::MapReduce, 4, 1);
    let messages: Vec<String> = sessions
        .iter()
        .flat_map(|s| s.lines.iter().map(|l| l.message.clone()))
        .collect();
    let mut g = c.benchmark_group("spell");
    g.throughput(Throughput::Elements(messages.len() as u64));
    g.bench_function("parse_stream", |b| {
        b.iter(|| {
            let mut p = SpellParser::default();
            for m in &messages {
                p.parse_message(m);
            }
            p.len()
        })
    });
    // matching against a trained key set (the detection-phase hot path)
    let mut trained = SpellParser::default();
    for m in &messages {
        trained.parse_message(m);
    }
    g.bench_function("match_stream", |b| {
        b.iter(|| {
            messages
                .iter()
                .filter(|m| trained.match_raw(m).is_some())
                .count()
        })
    });
    g.finish();
}

/// Regression guard for the indexed matcher: indexed vs reference linear
/// scan against a large (≥1k) key set. The acceptance bar for the index is
/// ≥3× the linear scan; `cargo run --bin bench_pipeline` records the ratio
/// in BENCH_pipeline.json.
fn bench_spell_throughput(c: &mut Criterion) {
    let (parser, probes) = intellog_bench::synthetic_keyset(1200, 4000);
    assert!(
        parser.len() >= 1000,
        "need >=1k distinct keys, got {}",
        parser.len()
    );
    let mut g = c.benchmark_group("spell_throughput");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("indexed", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|m| parser.match_message(m).is_some())
                .count()
        })
    });
    g.bench_function("linear", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|m| parser.match_message_linear(m).is_some())
                .count()
        })
    });
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let sessions = training_sessions(SystemKind::Spark, 4, 2);
    let mut parser = SpellParser::default();
    for s in &sessions {
        for l in &s.lines {
            parser.parse_message(&l.message);
        }
    }
    let keys = parser.keys().to_vec();
    let mut g = c.benchmark_group("extraction");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("intel_keys", |b| {
        let ex = extract::IntelExtractor::new();
        b.iter(|| {
            keys.iter()
                .map(|k| ex.build(k).entities.len())
                .sum::<usize>()
        })
    });
    g.bench_function("pos_tagging", |b| {
        b.iter(|| {
            keys.iter()
                .map(|k| lognlp::tag(&lognlp::tokenize(&k.render_sample())).len())
                .sum::<usize>()
        })
    });
    g.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("hwgraph");
    g.sample_size(10);
    for jobs in [2usize, 6] {
        let sessions = training_sessions(SystemKind::Spark, jobs, 3);
        g.bench_with_input(BenchmarkId::new("train", jobs), &sessions, |b, sessions| {
            b.iter(|| IntelLog::train(sessions).graph().groups.len())
        });
    }
    // parallel-vs-sequential training scaling
    let sessions = training_sessions(SystemKind::Spark, 6, 3);
    g.bench_function("train_sequential", |b| {
        b.iter(|| IntelLog::train_sequential(&sessions).graph().groups.len())
    });
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        g.bench_with_input(
            BenchmarkId::new("train_threads", threads),
            &threads,
            |b, _| b.iter(|| pool.install(|| IntelLog::train(&sessions).graph().groups.len())),
        );
    }
    g.finish();
}

fn bench_detection(c: &mut Criterion) {
    let train = training_sessions(SystemKind::MapReduce, 8, 4);
    let il = IntelLog::train(&train);
    let eval = training_sessions(SystemKind::MapReduce, 4, 99);
    // Contract check before timing anything: `detect_job` under a 1-thread
    // pool must equal the genuinely sequential loop.
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    assert_eq!(
        one.install(|| il.detect_job(&eval)),
        il.detect_job_sequential(&eval),
        "1-thread parallel detection must match the sequential baseline"
    );
    let mut g = c.benchmark_group("detection");
    g.throughput(Throughput::Elements(eval.len() as u64));
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| il.detect_job_sequential(&eval).problematic_count())
    });
    g.bench_function("rayon_parallel", |b| {
        b.iter(|| il.detect_job(&eval).problematic_count())
    });
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| pool.install(|| il.detect_job(&eval).problematic_count()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_spell,
    bench_spell_throughput,
    bench_extraction,
    bench_training,
    bench_detection
);
criterion_main!(benches);
