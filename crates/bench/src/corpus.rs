//! Corpus builders shared by the experiment binaries and benchmarks.
//!
//! Reproduces the paper's experimental protocol (§6.1, §6.4):
//!
//! * **training**: the workload generator randomly submits jobs with tuned
//!   resources; logs are collected for model training;
//! * **Table 6 evaluation**: five configuration sets; per set, three jobs
//!   injected with kill / network-failure / node-failure plus three jobs
//!   without injected problems — 30 jobs per system, 15 with problems.
//!   Mirroring §6.4, a couple of the non-injected jobs carry latent issues
//!   (memory-pressure spill, starvation bug) that IntelLog may surface as
//!   *unexpected* problems (the paper's "(P/B)" column).

use dlasim::{FaultKind, GenJob, SystemKind, WorkloadGen, CONFIG_SETS};
use intellog_core::sessions_from_job;
use spell::Session;

/// One evaluation job with its ground truth.
#[derive(Debug, Clone)]
pub struct EvalJob {
    /// The generated job (per-session ground truth inside).
    pub job: GenJob,
    /// Pipeline-ready sessions.
    pub sessions: Vec<Session>,
    /// The injected problem (None = submitted as a no-problem job).
    pub injected: Option<FaultKind>,
    /// `true` if the "clean" job carries a latent (P/B) issue.
    pub latent: bool,
}

impl EvalJob {
    /// Ground truth: should a perfect detector flag this job?
    pub fn truly_problematic(&self) -> bool {
        self.injected.is_some()
    }
}

/// Training sessions: `jobs` clean jobs with tuned configurations.
pub fn training_sessions(system: SystemKind, jobs: usize, seed: u64) -> Vec<Session> {
    let mut gen = WorkloadGen::new(seed, 8);
    let mut out = Vec::new();
    for j in 0..jobs {
        let cfg = gen.training_config(system);
        let job = dlasim::generate(&cfg, None);
        for (i, mut s) in sessions_from_job(&job).into_iter().enumerate() {
            s.id = format!("t{j}_{i}_{}", s.id);
            out.push(s);
        }
    }
    out
}

/// Training jobs kept whole (for Table 4/5 evaluation and Stitch).
pub fn training_jobs(system: SystemKind, jobs: usize, seed: u64) -> Vec<GenJob> {
    let mut gen = WorkloadGen::new(seed, 8);
    (0..jobs)
        .map(|_| dlasim::generate(&gen.training_config(system), None))
        .collect()
}

/// The Table 6 evaluation corpus: 30 jobs (15 injected) per system.
pub fn table6_jobs(system: SystemKind, seed: u64) -> Vec<EvalJob> {
    let mut gen = WorkloadGen::new(seed, 8);
    let mut out = Vec::new();
    for set in 0..CONFIG_SETS.len() {
        // three injected jobs
        for kind in FaultKind::INJECTED {
            let cfg = gen.detection_config(system, set);
            let plan = gen.fault_plan(kind);
            let job = dlasim::generate(&cfg, Some(&plan));
            let sessions = sessions_from_job(&job);
            out.push(EvalJob {
                job,
                sessions,
                injected: Some(kind),
                latent: false,
            });
        }
        // three jobs without injected problems; one per corpus carries a
        // latent issue in sets 0 and 3 (spill under tight memory,
        // starvation for Spark / spill for the others)
        for k in 0..3 {
            let cfg = gen.detection_config(system, set);
            let latent_kind = match (set, k) {
                (0, 0) => Some(FaultKind::MemorySpill),
                (3, 0) => Some(if system == SystemKind::Spark {
                    FaultKind::Starvation
                } else {
                    FaultKind::MemorySpill
                }),
                _ => None,
            };
            let plan = latent_kind.map(|kind| gen.fault_plan(kind));
            let mut job = dlasim::generate(&cfg, plan.as_ref());
            // latent issues are NOT "injected problems" in the Table 6 sense
            job.injected = None;
            let sessions = sessions_from_job(&job);
            out.push(EvalJob {
                job,
                sessions,
                injected: None,
                latent: latent_kind.is_some(),
            });
        }
    }
    out
}

/// Detection scoring of one corpus at job granularity (Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobScore {
    /// Injected problems detected.
    pub detected: usize,
    /// Clean jobs flagged (no latent issue).
    pub false_positives: usize,
    /// Injected problems missed.
    pub false_negatives: usize,
    /// Latent (performance / bug) issues surfaced — the paper's "(P/B)".
    pub latent_found: usize,
    /// Total injected problems.
    pub total_injected: usize,
}

/// Aggregate per-job verdicts against ground truth.
pub fn score_jobs(results: &[(bool, &EvalJob)]) -> JobScore {
    let mut s = JobScore::default();
    for (flagged, job) in results {
        match (job.injected.is_some(), job.latent, *flagged) {
            (true, _, true) => s.detected += 1,
            (true, _, false) => s.false_negatives += 1,
            (false, true, true) => s.latent_found += 1,
            (false, false, true) => s.false_positives += 1,
            _ => {}
        }
        if job.injected.is_some() {
            s.total_injected += 1;
        }
    }
    s
}

/// Workload for the `spell_throughput` regression bench: a parser holding
/// `n_keys` distinct refined keys (each with two variable positions), plus
/// `n_probes` probe messages mixing the three matcher paths — exact key
/// instances (trie fast path), near-misses with one constant changed
/// (scored/LCS path) and fully unknown messages (pruned to no match).
pub fn synthetic_keyset(n_keys: usize, n_probes: usize) -> (spell::SpellParser, Vec<Vec<String>>) {
    let base = |i: usize| -> Vec<String> {
        // 6 key-unique tokens + 3 shared: max cross-key LCS is 3, well
        // below the required ceil(9/1.7) = 6, so keys never merge.
        vec![
            format!("svc{i}"),
            format!("op{i}"),
            "processing".into(),
            "request".into(),
            format!("stage{i}"),
            format!("unit{i}"),
            "for".into(),
            format!("id{}", i * 13),
            format!("{i}ms"),
        ]
    };
    let mut p = spell::SpellParser::default();
    for i in 0..n_keys {
        p.parse_tokens(base(i));
        // second instance differing in the trailing id/latency → two stars
        let mut v = base(i);
        v[7] = format!("id{}", i * 13 + 1);
        v[8] = format!("{}ms", i + 1);
        p.parse_tokens(v);
    }
    let probes = (0..n_probes)
        .map(|j| {
            let mut m = base(j % n_keys);
            m[7] = format!("id{}", j * 7);
            m[8] = format!("{j}ms");
            match j % 10 {
                // near-miss: one constant token changed → LCS path
                8 => m[2] = "handling".into(),
                // unknown message: nothing matches
                9 => {
                    for (pos, t) in m.iter_mut().enumerate() {
                        *t = format!("junk{j}_{pos}");
                    }
                }
                _ => {}
            }
            m
        })
        .collect();
    (p, probes)
}

/// Precision / recall / F1 from flat counts.
pub fn prf(tp: usize, fp: usize, fn_: usize) -> (f64, f64, f64) {
    let p = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let r = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f = if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    };
    (p, r, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_protocol_shape() {
        let jobs = table6_jobs(SystemKind::Spark, 1);
        assert_eq!(jobs.len(), 30);
        assert_eq!(jobs.iter().filter(|j| j.injected.is_some()).count(), 15);
        assert_eq!(jobs.iter().filter(|j| j.latent).count(), 2);
        // latent jobs are not counted as injected
        assert!(jobs
            .iter()
            .filter(|j| j.latent)
            .all(|j| j.injected.is_none()));
    }

    #[test]
    fn scoring() {
        let jobs = table6_jobs(SystemKind::Tez, 2);
        // a perfect detector
        let verdicts: Vec<(bool, &EvalJob)> = jobs
            .iter()
            .map(|j| (j.injected.is_some() || j.latent, j))
            .collect();
        let s = score_jobs(&verdicts);
        assert_eq!(s.detected, 15);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.latent_found, 2);
    }

    #[test]
    fn prf_math() {
        let (p, r, f) = prf(41, 6, 4);
        assert!((p - 0.8723).abs() < 0.001);
        assert!((r - 0.9111).abs() < 0.001);
        assert!((f - 0.8913).abs() < 0.01);
        assert_eq!(prf(0, 0, 0), (0.0, 0.0, 0.0));
    }
}
