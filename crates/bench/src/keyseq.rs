//! Key-sequence and Intel-Message helpers shared by the comparison
//! experiments (Tables 6–8, Figure 9).

use extract::{IntelExtractor, IntelMessage};
use spell::{KeyId, Session, SpellParser};

/// A sentinel for messages that match no trained key.
pub const UNKNOWN_KEY: KeyId = KeyId(u32::MAX);

/// Train a Spell parser over sessions and return it together with the
/// per-session key sequences.
pub fn train_keyseqs(sessions: &[Session]) -> (SpellParser, Vec<Vec<KeyId>>) {
    let mut parser = SpellParser::default();
    let seqs = sessions
        .iter()
        .map(|s| {
            s.lines
                .iter()
                .map(|l| parser.parse_message(&l.message).key_id)
                .collect()
        })
        .collect();
    (parser, seqs)
}

/// Map a session onto the trained key space without mutating it; unknown
/// messages become [`UNKNOWN_KEY`].
pub fn match_keyseq(parser: &SpellParser, session: &Session) -> Vec<KeyId> {
    session
        .lines
        .iter()
        .map(|l| parser.match_raw(&l.message).unwrap_or(UNKNOWN_KEY))
        .collect()
}

/// Lift sessions into Intel Messages using a trained parser (messages that
/// match no key are skipped).
pub fn intel_messages(parser: &SpellParser, sessions: &[Session]) -> Vec<Vec<IntelMessage>> {
    let ex = IntelExtractor::new();
    let keys: Vec<_> = parser.keys().iter().map(|k| ex.build(k)).collect();
    sessions
        .iter()
        .map(|s| {
            s.lines
                .iter()
                .filter_map(|l| {
                    let toks = spell::tokenize_message(&l.message);
                    parser.match_message(&toks).map(|kid| {
                        IntelMessage::instantiate(&keys[kid.0 as usize], &toks, &s.id, l.ts_ms)
                    })
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::training_sessions;
    use dlasim::SystemKind;

    #[test]
    fn keyseq_roundtrip() {
        let sessions = training_sessions(SystemKind::Tez, 2, 3);
        let (parser, seqs) = train_keyseqs(&sessions);
        assert_eq!(seqs.len(), sessions.len());
        // re-matching a training session gives known keys everywhere
        let rematch = match_keyseq(&parser, &sessions[0]);
        assert!(rematch.iter().all(|k| *k != UNKNOWN_KEY));
        assert_eq!(rematch, seqs[0]);
    }

    #[test]
    fn intel_messages_align_with_sessions() {
        let sessions = training_sessions(SystemKind::Spark, 2, 5);
        let (parser, _) = train_keyseqs(&sessions);
        let msgs = intel_messages(&parser, &sessions);
        assert_eq!(msgs.len(), sessions.len());
        assert!(msgs.iter().zip(&sessions).all(|(m, s)| m.len() == s.len()));
    }
}
