//! Information-extraction accuracy evaluation (paper Table 4).
//!
//! The paper checks Intel Keys against the logging statements in the
//! targeted systems' source code; here the simulator's template catalog
//! plays the role of the source code. Every Spell key is attributed to the
//! template that produced the majority of its messages, and the Intel Key's
//! extraction is scored against that template's human annotation.

use dlasim::{truth_of, GenJob, SystemKind};
use extract::{FieldCategory, IntelExtractor, IntelKey};
use spell::{KeyId, SpellParser};
use std::collections::HashMap;

/// Per-field accuracy counts: `total` from ground truth, plus false
/// positives and false negatives of the automatic extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FieldCounts {
    /// Ground-truth instances.
    pub total: usize,
    /// Extracted but not in the truth.
    pub fp: usize,
    /// In the truth but not extracted.
    pub fn_: usize,
}

/// One row of Table 4.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccuracyRow {
    /// System name.
    pub system: String,
    /// Messages consumed.
    pub consumed: usize,
    /// Number of Intel Keys evaluated.
    pub keys: usize,
    /// Entity accuracy.
    pub entities: FieldCounts,
    /// Identifier accuracy.
    pub identifiers: FieldCounts,
    /// Value accuracy.
    pub values: FieldCounts,
    /// Locality accuracy.
    pub localities: FieldCounts,
    /// Operations: ground-truth total and missed count (the paper reports
    /// no FP for operations).
    pub operations_total: usize,
    /// Operations the extractor failed to recover.
    pub operations_missed: usize,
}

/// Evaluate extraction accuracy over a training corpus.
pub fn evaluate(system: SystemKind, jobs: &[GenJob]) -> AccuracyRow {
    let mut parser = SpellParser::default();
    // key → template-id → #messages
    let mut attribution: HashMap<KeyId, HashMap<&'static str, u64>> = HashMap::new();
    let mut consumed = 0usize;
    for job in jobs {
        for session in &job.sessions {
            for line in &session.lines {
                let out = parser.parse_message(&line.message);
                *attribution
                    .entry(out.key_id)
                    .or_default()
                    .entry(line.template_id)
                    .or_insert(0) += 1;
                consumed += 1;
            }
        }
    }

    let extractor = IntelExtractor::new();
    let mut row = AccuracyRow {
        system: system.name().to_string(),
        consumed,
        ..Default::default()
    };

    for key in parser.keys() {
        // Non-natural-language keys are handled by pattern matching and
        // excluded from Intel Keys (paper §5).
        if !lognlp::is_natural_language(&key.render_sample()) {
            continue;
        }
        // Tie-break equal counts by template id: `HashMap` iteration order
        // is randomized per process, and `max_by_key` keeps the last
        // maximum it sees, so without the secondary key the attribution —
        // and the resulting Table 4 counts — would differ across runs.
        let Some(template) = attribution
            .get(&key.id)
            .and_then(|m| m.iter().max_by_key(|(t, c)| (**c, **t)))
            .map(|(t, _)| *t)
        else {
            continue;
        };
        let Some(truth) = truth_of(system, template) else {
            continue;
        };
        let ik = extractor.build(key);
        row.keys += 1;
        score_entities(&ik, truth.entities, &mut row.entities);
        score_fields(
            &ik,
            FieldCategory::Identifier,
            truth.identifiers,
            &mut row.identifiers,
        );
        score_fields(&ik, FieldCategory::Value, truth.values, &mut row.values);
        score_fields(
            &ik,
            FieldCategory::Locality,
            truth.localities,
            &mut row.localities,
        );
        row.operations_total += truth.operations;
        row.operations_missed += truth.operations.saturating_sub(ik.operations.len());
    }
    row
}

fn score_entities(ik: &IntelKey, truth: &[&str], counts: &mut FieldCounts) {
    let extracted = ik.entity_phrases();
    counts.total += truth.len();
    counts.fp += extracted.iter().filter(|e| !truth.contains(e)).count();
    counts.fn_ += truth.iter().filter(|t| !extracted.contains(t)).count();
}

fn score_fields(ik: &IntelKey, cat: FieldCategory, expected: usize, counts: &mut FieldCounts) {
    let got = ik.fields.iter().filter(|f| f.category == cat).count();
    counts.total += expected;
    counts.fp += got.saturating_sub(expected);
    counts.fn_ += expected.saturating_sub(got);
}

impl AccuracyRow {
    /// Entity extraction precision (extracted-and-correct / extracted).
    pub fn entity_precision(&self) -> f64 {
        let correct = self.entities.total.saturating_sub(self.entities.fn_);
        let extracted = correct + self.entities.fp;
        if extracted == 0 {
            0.0
        } else {
            correct as f64 / extracted as f64
        }
    }

    /// Entity extraction recall.
    pub fn entity_recall(&self) -> f64 {
        if self.entities.total == 0 {
            0.0
        } else {
            (self.entities.total - self.entities.fn_) as f64 / self.entities.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::training_jobs;

    #[test]
    fn accuracy_shape_matches_paper() {
        for system in SystemKind::ANALYTICS {
            let jobs = training_jobs(system, 6, 11);
            let row = evaluate(system, &jobs);
            assert!(row.keys >= 10, "{system:?}: only {} keys", row.keys);
            assert!(row.consumed > 500, "{system:?}");
            // high-but-imperfect extraction, as in Table 4
            let p = row.entity_precision();
            let r = row.entity_recall();
            assert!(p > 0.6, "{system:?} precision {p} ({row:?})");
            assert!(r > 0.6, "{system:?} recall {r} ({row:?})");
            assert!(
                row.entities.fp > 0 || row.entities.fn_ > 0,
                "{system:?}: suspiciously perfect extraction"
            );
            // identifiers/values mostly recovered
            assert!(row.identifiers.total > 0 && row.values.total > 0);
            assert!(row.identifiers.fn_ * 3 <= row.identifiers.total, "{row:?}");
        }
    }

    #[test]
    fn operations_missed_includes_ungrammatical_keys() {
        // MapReduce's 'Down to the last merge-pass' has no predicate; it is
        // non-NL under the clause definition and thus excluded from keys —
        // operations_missed counts only grammatical misses.
        let jobs = training_jobs(SystemKind::MapReduce, 4, 5);
        let row = evaluate(SystemKind::MapReduce, &jobs);
        assert!(row.operations_total > 0);
        assert!(row.operations_missed <= row.operations_total / 2, "{row:?}");
    }
}
