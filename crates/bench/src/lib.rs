//! # intellog-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6). Each
//! `src/bin/tableN.rs` / `src/bin/figureN.rs` binary prints the same rows /
//! series the paper reports; `benches/` holds the criterion
//! micro-benchmarks and ablations. Shared machinery:
//!
//! * [`corpus`] — the §6.1/§6.4 experimental protocol (training corpora,
//!   the 30-job fault-injection matrix, scoring);
//! * [`accuracy`] — the Table 4 extraction-accuracy evaluation against the
//!   simulator's template ground truth.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod corpus;
pub mod keyseq;

pub use accuracy::{evaluate, AccuracyRow, FieldCounts};
pub use corpus::{
    prf, score_jobs, synthetic_keyset, table6_jobs, training_jobs, training_sessions, EvalJob,
    JobScore,
};
pub use keyseq::{intel_messages, match_keyseq, train_keyseqs, UNKNOWN_KEY};
