//! Figure 9 — the S³ graph of Spark built by Stitch (the identifier-only
//! baseline). Contrast with Figure 8: the S³ graph captures identifier
//! hierarchies but none of the operations/events the HW-graph carries.
//!
//! Run with: `cargo run --release -p intellog-bench --bin figure9 [jobs]`

use baselines::S3Graph;
use dlasim::SystemKind;
use intellog_bench::{intel_messages, train_keyseqs, training_jobs, training_sessions};
use intellog_core::sessions_from_job;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    // keys learned over the whole corpus, S3 relations scoped per job
    let all_sessions = training_sessions(SystemKind::Spark, jobs, 88);
    let (parser, _) = train_keyseqs(&all_sessions);
    let per_job: Vec<_> = training_jobs(SystemKind::Spark, jobs, 88)
        .iter()
        .map(|job| intel_messages(&parser, &sessions_from_job(job)))
        .collect();
    let g = S3Graph::build_scoped(&per_job);
    println!("Figure 9: the S3 graph of Spark built by Stitch\n");
    println!("identifier types: {:?}\n", g.types);
    print!("{}", g.render());
    println!("\npaper shape: {{HOST/IP}} -> {{EXECUTOR/CONTAINER}} -> {{STAGE, TASK}} -> {{TID}}; {{BROADCAST}} isolated");
    println!(
        "note: no operations, no entities — identifier names only (the paper's §6.3 critique)"
    );
}
