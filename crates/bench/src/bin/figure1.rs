//! Figure 1 — the annotated MapReduce fetcher log snippet.
//!
//! Extracts the fetcher subroutine from a simulated MapReduce job and prints
//! each log key with its field annotations (entity / identifier / value /
//! locality), as in the paper's Figure 1.
//!
//! Run with: `cargo run -p intellog-bench --bin figure1`

use dlasim::{JobConfig, SystemKind};
use extract::{FieldCategory, IntelExtractor};
use spell::SpellParser;

fn main() {
    let cfg = JobConfig {
        system: SystemKind::MapReduce,
        workload: "wordcount".into(),
        input_gb: 4,
        mem_mb: 2048,
        cores: 4,
        executors: 2,
        hosts: 5,
        seed: 1,
    };
    let job = dlasim::generate(&cfg, None);
    let fetcher_templates = ["mr.fetch.about", "mr.fetch.read", "mr.fetch.freed"];

    let mut parser = SpellParser::default();
    let mut samples: Vec<String> = Vec::new();
    for session in &job.sessions {
        for line in &session.lines {
            if fetcher_templates.contains(&line.template_id) {
                if samples.len() < 3 {
                    samples.push(line.message.clone());
                }
                parser.parse_message(&line.message);
            }
        }
    }

    println!("Figure 1: a real-world log snippet of MapReduce (simulated)\n");
    println!("messages:");
    for (i, s) in samples.iter().enumerate() {
        println!("  {} {s}", i + 1);
    }
    println!("\nlog keys and annotations:");
    let ex = IntelExtractor::new();
    for key in parser.keys() {
        let ik = ex.build(key);
        println!("  {}", key.render());
        println!("    entities:   {:?}", ik.entity_phrases());
        let mut ids = Vec::new();
        let mut vals = Vec::new();
        let mut locs = Vec::new();
        for f in &ik.fields {
            match f.category {
                FieldCategory::Identifier => ids.push(format!(
                    "pos {} [{}]",
                    f.pos,
                    f.id_type.clone().unwrap_or_default()
                )),
                FieldCategory::Value => vals.push(format!(
                    "pos {} [{}]",
                    f.pos,
                    f.name.clone().unwrap_or_default()
                )),
                FieldCategory::Locality => locs.push(format!("pos {}", f.pos)),
                FieldCategory::Skipped => {}
            }
        }
        println!("    identifiers: {ids:?}");
        println!("    values:      {vals:?}");
        println!("    localities:  {locs:?}");
        println!();
    }
}
