//! Table 8 — anomaly detection accuracy comparison: IntelLog vs DeepLog vs
//! LogCluster vs SemVec (the parsing-free semantic-vector baseline).
//!
//! All tools consume the same Table 6 corpora (four evaluated systems —
//! Spark, MapReduce, Tez, TensorFlow — 30 jobs each). SemVec alone reads
//! the **raw rendered lines** (headers and all, no parser); the others
//! share one Spell key space. Scoring is per-session against the
//! simulator's ground truth
//! (`affected` flag). Paper: IntelLog 87.23 / 91.11 / 89.13; DeepLog 8.81 /
//! 100.00 / 16.19; LogCluster 73.08 / N/A / N/A.
//!
//! Run with: `cargo run --release -p intellog-bench --bin table8 [train_jobs]`

use baselines::{DeepLog, DeepLogConfig, LogCluster, LogClusterConfig, SemVec, SemVecConfig};
use dlasim::{RawFormat, SystemKind};
use intellog_bench::{
    match_keyseq, prf, table6_jobs, train_keyseqs, training_jobs, training_sessions,
};
use intellog_core::IntelLog;

#[derive(Default)]
struct Counts {
    tp: usize,
    fp: usize,
    fn_: usize,
}

impl Counts {
    fn add(&mut self, flagged: bool, affected: bool) {
        match (flagged, affected) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => {}
        }
    }
}

fn main() {
    let train_jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let mut intellog = Counts::default();
    let mut deeplog = Counts::default();
    let mut logcluster = Counts::default();
    let mut semvec = Counts::default();

    for system in SystemKind::EVALUATED {
        let train = training_sessions(system, train_jobs, 100 + system as u64);
        // IntelLog
        let il = IntelLog::train(&train);
        // DeepLog / LogCluster share one Spell key space over the same corpus
        let (parser, seqs) = train_keyseqs(&train);
        let mut dl = DeepLog::new(DeepLogConfig::default());
        for s in &seqs {
            dl.train_session(s);
        }
        let lc = LogCluster::train(LogClusterConfig::default(), &seqs);
        // SemVec never sees the parser: it trains on the raw rendered lines
        // of the same jobs the structural corpus came from.
        let raw = |s: &dlasim::GenSession| s.raw_lines(RawFormat::for_system(system));
        let sv_train: Vec<Vec<String>> = training_jobs(system, train_jobs, 100 + system as u64)
            .iter()
            .flat_map(|j| j.sessions.iter().map(raw))
            .collect();
        let sv = SemVec::train(SemVecConfig::default(), &sv_train);

        for job in table6_jobs(system, 200 + system as u64) {
            let report = il.detect_job(&job.sessions);
            for (sr, gen) in report.sessions.iter().zip(&job.job.sessions) {
                intellog.add(sr.is_problematic(), gen.affected);
            }
            for (session, gen) in job.sessions.iter().zip(&job.job.sessions) {
                let keys = match_keyseq(&parser, session);
                deeplog.add(dl.is_anomalous(&keys), gen.affected);
                logcluster.add(lc.is_anomalous(&keys), gen.affected);
            }
            for gen in &job.job.sessions {
                semvec.add(sv.is_anomalous(&raw(gen)), gen.affected);
            }
        }
    }

    println!("Table 8: anomaly detection accuracy comparison (per-session)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "tool", "precision", "recall", "F-measure"
    );
    let rows = [
        ("IntelLog", &intellog, true),
        ("DeepLog", &deeplog, true),
        ("LogCluster", &logcluster, false),
        ("SemVec", &semvec, true),
    ];
    for (name, c, full) in rows {
        let (p, r, f) = prf(c.tp, c.fp, c.fn_);
        if full {
            println!(
                "{:<12} {:>9.2}% {:>9.2}% {:>9.2}%",
                name,
                100.0 * p,
                100.0 * r,
                100.0 * f
            );
        } else {
            // LogCluster surfaces representative logs for examination; the
            // paper reports recall as N/A.
            println!(
                "{:<12} {:>9.2}% {:>10} {:>10}",
                name,
                100.0 * p,
                "N/A",
                "N/A"
            );
        }
    }
    println!("\npaper: IntelLog 87.23/91.11/89.13 | DeepLog 8.81/100.00/16.19 | LogCluster 73.08/N-A/N-A");
    println!(
        "(SemVec is this repo's parsing-free baseline, per the NeuralLog direction — no paper row)"
    );
    println!(
        "(raw counts — IntelLog tp/fp/fn {}/{}/{}; DeepLog {}/{}/{}; LogCluster {}/{}/{}; SemVec {}/{}/{})",
        intellog.tp,
        intellog.fp,
        intellog.fn_,
        deeplog.tp,
        deeplog.fp,
        deeplog.fn_,
        logcluster.tp,
        logcluster.fp,
        logcluster.fn_,
        semvec.tp,
        semvec.fp,
        semvec.fn_
    );
}
