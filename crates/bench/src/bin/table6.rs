//! Table 6 — accuracy of anomaly detection by IntelLog.
//!
//! Protocol (§6.4): per system, five configuration sets × (three injected
//! problems + three no-problem jobs) = 30 jobs, 15 with problems; faults
//! trigger at random points. Reported: session count range, session length
//! range, D / FP / FN / (P/B).
//!
//! Run with: `cargo run --release -p intellog-bench --bin table6 [train_jobs]`

use dlasim::SystemKind;
use intellog_bench::{score_jobs, table6_jobs, training_sessions, EvalJob};
use intellog_core::IntelLog;

fn main() {
    let train_jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    println!("Table 6: anomaly detection accuracy ({train_jobs} training jobs per system)\n");
    println!(
        "{:<11} {:>12} {:>16} {:>20}",
        "Framework", "sessions", "session length", "D / FP / FN / (P/B)"
    );

    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for system in SystemKind::ANALYTICS {
        let il = IntelLog::train(&training_sessions(system, train_jobs, 100 + system as u64));
        let eval: Vec<EvalJob> = table6_jobs(system, 200 + system as u64);

        let mut min_sessions = usize::MAX;
        let mut max_sessions = 0usize;
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        let mut verdicts = Vec::new();
        for job in &eval {
            min_sessions = min_sessions.min(job.sessions.len());
            max_sessions = max_sessions.max(job.sessions.len());
            for s in &job.sessions {
                min_len = min_len.min(s.len());
                max_len = max_len.max(s.len());
            }
            let report = il.detect_job(&job.sessions);
            verdicts.push((report.is_problematic(), job));
        }
        let score = score_jobs(&verdicts);
        println!(
            "{:<11} {:>12} {:>16} {:>20}",
            system.name(),
            format!("{min_sessions}~{max_sessions}"),
            format!("{min_len}~{max_len}"),
            format!(
                "{} / {} / {} / ({})",
                score.detected, score.false_positives, score.false_negatives, score.latent_found
            ),
        );
        tp += score.detected;
        fp += score.false_positives;
        fn_ += score.false_negatives;
    }
    let (p, r, f) = intellog_bench::prf(tp, fp, fn_);
    println!(
        "\ndetected {tp} of {} injected problems; overall precision {:.2}% recall {:.2}% F {:.2}%",
        tp + fn_,
        100.0 * p,
        100.0 * r,
        100.0 * f
    );
    println!("paper: Spark 13/2/2/(2) | MapReduce 15/1/0/(0) | Tez 13/3/2/(3); 41 of 45; precision 87.23% recall 91.11%");
}
