//! Figure 8 — the Spark HW-graph with the semantic knowledge of the
//! workflow: hierarchical entity groups (critical marked `*`), subroutines
//! per identifier-type signature, critical Intel Keys marked `!`.
//!
//! Run with: `cargo run --release -p intellog-bench --bin figure8 [jobs]`

use dlasim::SystemKind;
use intellog_bench::training_sessions;
use intellog_core::IntelLog;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let sessions = training_sessions(SystemKind::Spark, jobs, 88);
    let total_msgs: usize = sessions.iter().map(|s| s.len()).sum();
    let il = IntelLog::train(&sessions);
    println!(
        "Figure 8: the HW-graph for Spark (built from {} sessions / {} messages)\n",
        sessions.len(),
        total_msgs
    );
    print!("{}", il.render_graph());
    println!(
        "\nJSON export: {} bytes (paper §5: HW-graphs are output as JSON)",
        il.graph_json().len()
    );
}
