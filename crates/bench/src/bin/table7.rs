//! Table 7 — the three diagnosis case studies (§6.4).
//!
//! Case 1: a MapReduce WordCount job with a network problem on one host —
//! the GroupBy procedure converges on the victim.
//! Case 2: Spark KMeans and Tez Query 8 with a performance issue (memory
//! spill) — a new 'spill' entity and a disk path surface; re-running with a
//! larger memory limit is clean.
//! Case 3: a Spark WordCount job hitting the Spark-19731 starvation bug —
//! sessions missing the 'task' entity group.
//!
//! Run with: `cargo run --release -p intellog-bench --bin table7`

use dlasim::{FaultKind, FaultPlan, JobConfig, SystemKind};
use intellog_bench::training_sessions;
use intellog_core::{sessions_from_job, IntelLog};

fn cfg(
    system: SystemKind,
    workload: &str,
    input_gb: u32,
    mem_mb: u32,
    cores: u32,
    seed: u64,
) -> JobConfig {
    JobConfig {
        system,
        workload: workload.into(),
        input_gb,
        mem_mb,
        cores,
        executors: 4,
        hosts: 10,
        seed,
    }
}

fn main() {
    println!("Table 7: case studies\n");

    // ---------- Case 1: MapReduce WordCount, network problem ----------
    let il_mr = IntelLog::train(&training_sessions(SystemKind::MapReduce, 20, 301));
    let c1 = cfg(SystemKind::MapReduce, "wordcount", 30, 4096, 8, 777);
    let plan = FaultPlan::new(FaultKind::NetworkFailure, 0.3, 4, 0);
    let job = dlasim::generate(&c1, Some(&plan));
    let sessions = sessions_from_job(&job);
    let report = il_mr.detect_job(&sessions);
    let diag = il_mr.diagnose(&report);
    println!(
        "case 1  MapReduce/WordCount 30GB 8-core: sessions D/T = {}/{}",
        report.problematic_count(),
        report.total_count()
    );
    println!(
        "        GroupBy identifiers: {} groups; GroupBy locality:",
        diag.identifier_groups
    );
    for (h, n) in diag.hosts.iter().take(3) {
        println!("          {h}: {n} failing messages");
    }
    println!("        => network problem on a host (paper: 4/259, 11 fetcher groups, one host)\n");

    // ---------- Case 2.1: Spark KMeans performance issue ----------
    let il_sp = IntelLog::train(&training_sessions(SystemKind::Spark, 20, 302));
    let c21 = cfg(SystemKind::Spark, "kmeans", 30, 2048, 8, 778);
    let plan = FaultPlan::new(FaultKind::MemorySpill, 0.0, 0, 0);
    let job = dlasim::generate(&c21, Some(&plan));
    let report = il_sp.detect_job(&sessions_from_job(&job));
    let diag = il_sp.diagnose(&report);
    println!(
        "case 2.1 Spark/KMeans 30GB 2GB-mem: sessions D/T = {}/{}",
        report.problematic_count(),
        report.total_count()
    );
    println!(
        "        new entities in unexpected messages: {:?}",
        diag.new_entities
    );

    // ---------- Case 2.2: Tez Query 8 performance issue (3 jobs) ----------
    let il_tz = IntelLog::train(&training_sessions(SystemKind::Tez, 20, 303));
    let (mut d, mut t) = (0, 0);
    let mut new_entities = Vec::new();
    let mut spill_paths = 0usize;
    for k in 0..3 {
        let c22 = cfg(SystemKind::Tez, "query8", 5, 1024, 1, 800 + k);
        let plan = FaultPlan::new(FaultKind::MemorySpill, 0.0, 0, 0);
        let job = dlasim::generate(&c22, Some(&plan));
        let report = il_tz.detect_job(&sessions_from_job(&job));
        d += report.problematic_count();
        t += report.total_count();
        let diag = il_tz.diagnose(&report);
        new_entities.extend(diag.new_entities);
        spill_paths += report
            .anomalies()
            .filter_map(|a| match a {
                anomaly::Anomaly::UnexpectedMessage { intel, .. } => Some(
                    intel
                        .localities
                        .iter()
                        .filter(|l| l.starts_with('/'))
                        .count(),
                ),
                _ => None,
            })
            .sum::<usize>();
    }
    new_entities.sort();
    new_entities.dedup();
    println!("case 2.2 Tez/Query8 5GB 1GB-mem x3: sessions D/T = {d}/{t}");
    println!(
        "        new entities: {new_entities:?}; disk paths recorded in {spill_paths} messages"
    );

    // Verification run: same jobs with a larger memory limit are clean.
    let c_verify = cfg(SystemKind::Spark, "kmeans", 30, 8192, 8, 778);
    let job = dlasim::generate(&c_verify, None);
    let report = il_sp.detect_job(&sessions_from_job(&job));
    println!(
        "        re-run with larger memory: D/T = {}/{} (paper: no problem triggered)\n",
        report.problematic_count(),
        report.total_count()
    );

    // ---------- Case 3: Spark-19731 starvation bug ----------
    let c3 = cfg(SystemKind::Spark, "wordcount", 30, 16384, 8, 779);
    let plan = FaultPlan::new(FaultKind::Starvation, 0.0, 0, 0);
    let job = dlasim::generate(&c3, Some(&plan));
    let sessions = sessions_from_job(&job);
    let report = il_sp.detect_job(&sessions);
    let missing_task = report
        .sessions
        .iter()
        .filter(|s| {
            s.anomalies.iter().any(|a| match a {
                anomaly::Anomaly::MissingGroup { group } => {
                    group.contains("task") || group == "stage" || group == "tid"
                }
                anomaly::Anomaly::MissingCriticalKey { group, .. } => group.contains("task"),
                _ => false,
            })
        })
        .count();
    println!(
        "case 3  Spark/WordCount starvation bug: sessions D/T = {}/{}",
        report.problematic_count(),
        report.total_count()
    );
    println!(
        "        {missing_task} sessions contain no message of the 'task' entity group (paper: 4 of 8)"
    );
    // Inspect the HW-graph instances of the healthy sessions (the paper
    // counts at most 8 task subroutine instances per container).
    let max_task_instances = sessions
        .iter()
        .map(|s| {
            il_sp
                .detector()
                .detect_session_detailed(s)
                .1
                .subroutine_instance_count("task")
        })
        .max()
        .unwrap_or(0);
    println!(
        "        healthy sessions hold at most {max_task_instances} task subroutine instances (paper: at most 8)"
    );
    println!("        => containers without tasks waste memory (Spark-19731)");
}
