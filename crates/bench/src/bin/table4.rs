//! Table 4 — accuracy of information extraction in the evaluated systems.
//!
//! Ground truth comes from the simulator's template catalog (standing in
//! for the paper's manual source-code inspection). Reported per system:
//! messages consumed, number of Intel Keys, and Total/FP/FN per field.
//!
//! Run with: `cargo run --release -p intellog-bench --bin table4 [jobs]`

use dlasim::SystemKind;
use intellog_bench::{evaluate, training_jobs};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    println!("Table 4: accuracy of information extraction ({jobs} jobs per system)\n");
    println!(
        "{:<11} {:>9} {:>6}  {:>13} {:>13} {:>13} {:>13} {:>13}",
        "Framework",
        "consumed",
        "keys",
        "Entities",
        "Identifiers",
        "Values",
        "Locations",
        "Operations"
    );
    println!(
        "{:<11} {:>9} {:>6}  {:>13} {:>13} {:>13} {:>13} {:>13}",
        "", "", "", "(Tot/FP/FN)", "(Tot/FP/FN)", "(Tot/FP/FN)", "(Tot/FP/FN)", "(Tot/Missed)"
    );

    let mut totals = (0usize, 0usize, 0usize); // entity tot/fp/fn across systems
    for system in SystemKind::EVALUATED {
        let corpus = training_jobs(system, jobs, 40 + system as u64);
        let row = evaluate(system, &corpus);
        println!(
            "{:<11} {:>9} {:>6}  {:>13} {:>13} {:>13} {:>13} {:>13}",
            row.system,
            row.consumed,
            row.keys,
            format!(
                "{}/{}/{}",
                row.entities.total, row.entities.fp, row.entities.fn_
            ),
            format!(
                "{}/{}/{}",
                row.identifiers.total, row.identifiers.fp, row.identifiers.fn_
            ),
            format!("{}/{}/{}", row.values.total, row.values.fp, row.values.fn_),
            format!(
                "{}/{}/{}",
                row.localities.total, row.localities.fp, row.localities.fn_
            ),
            format!("{}/{}", row.operations_total, row.operations_missed),
        );
        totals.0 += row.entities.total;
        totals.1 += row.entities.fp;
        totals.2 += row.entities.fn_;
    }
    let correct = totals.0 - totals.2;
    println!(
        "\noverall entity precision {:.1}%  recall {:.1}%",
        100.0 * correct as f64 / (correct + totals.1).max(1) as f64,
        100.0 * correct as f64 / totals.0.max(1) as f64
    );
    println!("paper (for scale): Spark 60 keys, entities 63/3/0; MapReduce 44 keys, 43/9/2; Tez 43 keys, 101/2/3");
}
