//! Benchmark regression harness: times every pipeline stage and emits a
//! machine-readable `BENCH_pipeline.json`.
//!
//! Stages and metrics (all throughputs in units/second, medians of
//! `--reps` repetitions):
//!
//! * `spell.parse_msgs_per_s` — streaming Spell over a MapReduce corpus;
//! * `spell.match_indexed_msgs_per_s` / `spell.match_linear_msgs_per_s` —
//!   the indexed matcher vs the linear-scan reference against a ≥1k-key
//!   set, plus their ratio `spell.index_speedup` (regression bar: ≥3×);
//! * `extraction.keys_per_s` — Intel-Key construction (POS tagging +
//!   n-grams) per log key;
//! * `hwgraph.sessions_per_s` — full training (Spell + extraction + graph);
//! * `detection.sequential_sessions_per_s` and
//!   `detection.threads{1,2,4,8}_sessions_per_s` — per-session detection,
//!   genuinely sequential baseline vs rayon pools;
//! * `training.sequential_sessions_per_s` and
//!   `training.threads{N}_sessions_per_s` — parallel training scaling;
//! * `end_to_end.{sequential,parallel}_s` — train + detect wall-clock on
//!   the Table 6-style corpus, plus `end_to_end.speedup`;
//! * `adapters[]` — per `lognlp::format` adapter (HDFS header, RFC-3164
//!   syslog, JSON lines): raw-line ingest throughput of the native path
//!   (`LogFormat` header parse + streaming Spell) vs the adapted path
//!   (adapter header parse + streaming Spell) over the same message
//!   bodies — `train` vs `train --format` on equal terms — and the
//!   normalisation overhead percentage (regression bar: ≤ 15%).
//!
//! Usage: `cargo run --release -p intellog-bench --bin bench_pipeline --
//! [--smoke] [--out PATH] [--reps N]`. `--smoke` shrinks the corpora so CI
//! can validate the emitter in seconds; its numbers are not meaningful.

use dlasim::{ForeignFormat, SystemKind};
use intellog_bench::{synthetic_keyset, training_jobs, training_sessions};
use intellog_core::IntelLog;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct SpellStats {
    corpus_msgs: usize,
    parse_msgs_per_s: f64,
    keyset_size: usize,
    probe_msgs: usize,
    /// Frozen-parser matching: the compiled key automaton (the production
    /// read path). The name predates the automaton — kept stable for
    /// downstream tooling.
    match_indexed_msgs_per_s: f64,
    match_linear_msgs_per_s: f64,
    index_speedup: f64,
    automaton_states: usize,
    automaton_dense_buckets: usize,
    automaton_buckets: usize,
}

/// One `lognlp::format` adapter's normalisation cost relative to native
/// raw-line ingest. Both sides do the whole `train` ingestion verb on the
/// same sessions — strip a header, then stream the message body through
/// Spell parsing — differing only in which header grammar runs
/// (`spell::LogFormat` natively, the `lognlp::format` adapter for the
/// foreign rendering), so `overhead_pct` is exactly what `--format` costs
/// over ingesting the same corpus in its native syntax.
#[derive(Serialize)]
struct AdapterStats {
    name: String,
    lines: usize,
    native_msgs_per_s: f64,
    adapted_msgs_per_s: f64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct ExtractionStats {
    keys: usize,
    keys_per_s: f64,
}

#[derive(Serialize)]
struct HwGraphStats {
    sessions: usize,
    sessions_per_s: f64,
}

#[derive(Serialize)]
struct ScalingStats {
    sessions: usize,
    sequential_sessions_per_s: f64,
    threads1_sessions_per_s: f64,
    threads2_sessions_per_s: f64,
    threads4_sessions_per_s: f64,
    threads8_sessions_per_s: f64,
}

#[derive(Serialize)]
struct EndToEndStats {
    train_sessions: usize,
    eval_sessions: usize,
    /// Seed-style baseline: sequential training + detection with the
    /// linear-scan matcher (the pre-index implementation).
    seed_baseline_s: f64,
    sequential_s: f64,
    parallel_s: f64,
    /// parallel (indexed) vs seed baseline — the headline number.
    speedup_vs_seed: f64,
    /// parallel vs sequential, both indexed — pure thread scaling.
    speedup_vs_sequential: f64,
}

#[derive(Serialize)]
struct ObservabilityStats {
    /// End-to-end train+detect with the obs layer compiled in but disabled
    /// (the default state — this is the `end_to_end.parallel_s` run).
    disabled_s: f64,
    /// Same workload with the obs layer enabled and recording.
    enabled_s: f64,
    /// (enabled − disabled) / disabled × 100. Regression bar: ≤ 5%.
    overhead_pct: f64,
}

/// Per-stage registry dump from one enabled end-to-end pass: every counter
/// and gauge value, plus count / total time / p99 for each span histogram.
#[derive(Serialize)]
struct StageBreakdown {
    counters: std::collections::BTreeMap<String, u64>,
    span_count: std::collections::BTreeMap<String, u64>,
    span_total_us: std::collections::BTreeMap<String, u64>,
    span_p99_us: std::collections::BTreeMap<String, u64>,
}

#[derive(Serialize)]
struct BenchReport {
    smoke: bool,
    reps: usize,
    spell: SpellStats,
    adapters: Vec<AdapterStats>,
    extraction: ExtractionStats,
    hwgraph: HwGraphStats,
    detection: ScalingStats,
    training: ScalingStats,
    end_to_end: EndToEndStats,
    observability: ObservabilityStats,
    stage_breakdown: StageBreakdown,
}

/// Median wall-clock seconds of `reps` runs of `f`.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut reps: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("bench_pipeline: --out requires a path");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                reps = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bench_pipeline: --reps requires a positive integer");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!(
                    "bench_pipeline: unknown argument {other}\n\
                     usage: bench_pipeline [--smoke] [--out PATH] [--reps N]"
                );
                std::process::exit(2);
            }
        }
    }
    let reps = reps.unwrap_or(if smoke { 1 } else { 5 });

    // corpora: shrink everything drastically under --smoke
    let (spell_jobs, keyset, probes, train_jobs, eval_jobs) = if smoke {
        (1, 1000, 500, 1, 1)
    } else {
        (4, 1200, 4000, 8, 6)
    };

    eprintln!("bench_pipeline: smoke={smoke} reps={reps}");

    // --- spell: streaming parse ------------------------------------------
    let sessions = training_sessions(SystemKind::MapReduce, spell_jobs, 1);
    let messages: Vec<String> = sessions
        .iter()
        .flat_map(|s| s.lines.iter().map(|l| l.message.clone()))
        .collect();
    let parse_s = time_median(reps, || {
        let mut p = spell::SpellParser::default();
        for m in &messages {
            p.parse_line(m);
        }
        p.len()
    });

    // --- spell: indexed vs linear matching at >=1k keys ------------------
    let (mut parser, probe_msgs) = synthetic_keyset(keyset, probes);
    assert!(
        parser.len() >= keyset,
        "keyset under-filled: {}",
        parser.len()
    );
    // Freeze: compiles the key set into the prefix-DFA automaton, the
    // production read-path configuration (detection, replay, serving).
    parser.freeze();
    let auto_stats = parser.automaton_stats().expect("frozen parser");
    // Equivalence before timing: the automaton, the live prefix-tree +
    // inverted index, and the linear-scan reference must agree on every
    // probe — a wrong matcher's throughput is meaningless.
    for m in &probe_msgs {
        let ids = parser.lookup_ids(m);
        let auto = parser.match_ids(&ids);
        assert_eq!(auto, parser.match_ids_index(&ids));
        assert_eq!(auto, parser.match_ids_linear(&ids));
    }
    let indexed_s = time_median(reps, || {
        probe_msgs
            .iter()
            .filter(|m| parser.match_message(m).is_some())
            .count()
    });
    let linear_s = time_median(reps.min(3), || {
        probe_msgs
            .iter()
            .filter(|m| parser.match_message_linear(m).is_some())
            .count()
    });
    let spell_stats = SpellStats {
        corpus_msgs: messages.len(),
        parse_msgs_per_s: messages.len() as f64 / parse_s,
        keyset_size: parser.len(),
        probe_msgs: probe_msgs.len(),
        match_indexed_msgs_per_s: probe_msgs.len() as f64 / indexed_s,
        match_linear_msgs_per_s: probe_msgs.len() as f64 / linear_s,
        index_speedup: linear_s / indexed_s,
        automaton_states: auto_stats.states,
        automaton_dense_buckets: auto_stats.dense_buckets,
        automaton_buckets: auto_stats.buckets,
    };
    eprintln!(
        "spell: parse {:.0} msgs/s, match automaton {:.0} vs linear {:.0} msgs/s ({:.1}x)",
        spell_stats.parse_msgs_per_s,
        spell_stats.match_indexed_msgs_per_s,
        spell_stats.match_linear_msgs_per_s,
        spell_stats.index_speedup
    );

    // --- format adapters: normalisation overhead --------------------------
    // Render the same jobs the Spell corpus came from both natively and in
    // each foreign syntax. Both sides run the whole ingest verb — header
    // parse, then streaming Spell over the (identical) message bodies —
    // so the delta is exactly what `--format` costs over native ingest.
    let adapter_jobs = training_jobs(SystemKind::MapReduce, spell_jobs, 1);
    let native_format = dlasim::RawFormat::for_system(SystemKind::MapReduce);
    let native_lines: Vec<String> = adapter_jobs
        .iter()
        .flat_map(|j| j.sessions.iter().flat_map(|s| s.raw_lines(native_format)))
        .collect();
    let native_grammar = spell::LogFormat::Hadoop;
    let native_s = time_median(reps, || {
        let mut p = spell::SpellParser::default();
        let mut parsed = 0usize;
        for line in &native_lines {
            if let Some(l) = native_grammar.parse(line) {
                p.parse_line(&l.message);
                parsed += 1;
            }
        }
        assert_eq!(parsed, native_lines.len(), "native header grammar missed");
        p.len()
    });
    let mut adapters: Vec<AdapterStats> = Vec::new();
    for format in ForeignFormat::ALL {
        let adapter = intellog_core::adapter_for(format).adapter();
        let foreign_lines: Vec<String> = adapter_jobs
            .iter()
            .flat_map(|j| j.sessions.iter().flat_map(|s| format.render_session(s)))
            .collect();
        assert_eq!(foreign_lines.len(), native_lines.len());
        for l in &foreign_lines {
            adapter
                .parse_record(l)
                .unwrap_or_else(|e| panic!("{}: rejected own rendering {l:?}: {e}", format.name()));
        }
        let adapted_s = time_median(reps, || {
            let mut p = spell::SpellParser::default();
            for line in &foreign_lines {
                let rec = adapter.parse_record(line).expect("validated above");
                p.parse_line(rec.message);
            }
            p.len()
        });
        let stat = AdapterStats {
            name: format.name().to_string(),
            lines: foreign_lines.len(),
            native_msgs_per_s: foreign_lines.len() as f64 / native_s,
            adapted_msgs_per_s: foreign_lines.len() as f64 / adapted_s,
            overhead_pct: (adapted_s - native_s) / native_s * 100.0,
        };
        eprintln!(
            "adapter {}: native {:.0} vs adapted {:.0} msgs/s ({:+.1}% overhead)",
            stat.name, stat.native_msgs_per_s, stat.adapted_msgs_per_s, stat.overhead_pct
        );
        adapters.push(stat);
    }

    // --- extraction -------------------------------------------------------
    let mut key_parser = spell::SpellParser::default();
    for m in &messages {
        key_parser.parse_message(m);
    }
    let keys = key_parser.keys().to_vec();
    let extract_s = time_median(reps, || {
        let ex = extract::IntelExtractor::new();
        keys.iter()
            .map(|k| ex.build(k).entities.len())
            .sum::<usize>()
    });
    let extraction = ExtractionStats {
        keys: keys.len(),
        keys_per_s: keys.len() as f64 / extract_s,
    };
    eprintln!(
        "extraction: {:.0} keys/s over {} keys",
        extraction.keys_per_s, extraction.keys
    );

    // --- hwgraph build (full training) ------------------------------------
    let train = training_sessions(SystemKind::MapReduce, train_jobs, 4);
    let hw_s = time_median(reps, || IntelLog::train(&train).graph().groups.len());
    let hwgraph = HwGraphStats {
        sessions: train.len(),
        sessions_per_s: train.len() as f64 / hw_s,
    };
    eprintln!(
        "hwgraph: {:.1} sessions/s over {} sessions",
        hwgraph.sessions_per_s, hwgraph.sessions
    );

    // --- detection scaling -------------------------------------------------
    let il = IntelLog::train(&train);
    let eval = training_sessions(SystemKind::MapReduce, eval_jobs, 99);
    let seq_report = il.detect_job_sequential(&eval);
    assert_eq!(
        pool(1).install(|| il.detect_job(&eval)),
        seq_report,
        "1-thread parallel detection must equal the sequential baseline"
    );
    let det_seq = time_median(reps, || il.detect_job_sequential(&eval).problematic_count());
    let det_at = |threads: usize| {
        let p = pool(threads);
        time_median(reps, || {
            p.install(|| il.detect_job(&eval).problematic_count())
        })
    };
    let detection = ScalingStats {
        sessions: eval.len(),
        sequential_sessions_per_s: eval.len() as f64 / det_seq,
        threads1_sessions_per_s: eval.len() as f64 / det_at(1),
        threads2_sessions_per_s: eval.len() as f64 / det_at(2),
        threads4_sessions_per_s: eval.len() as f64 / det_at(4),
        threads8_sessions_per_s: eval.len() as f64 / det_at(8),
    };
    eprintln!(
        "detection: seq {:.1}, 1t {:.1}, 2t {:.1}, 4t {:.1}, 8t {:.1} sessions/s",
        detection.sequential_sessions_per_s,
        detection.threads1_sessions_per_s,
        detection.threads2_sessions_per_s,
        detection.threads4_sessions_per_s,
        detection.threads8_sessions_per_s
    );

    // --- training scaling ---------------------------------------------------
    let tr_seq = time_median(reps, || {
        IntelLog::train_sequential(&train).graph().groups.len()
    });
    let tr_at = |threads: usize| {
        let p = pool(threads);
        time_median(reps, || {
            p.install(|| IntelLog::train(&train).graph().groups.len())
        })
    };
    let training = ScalingStats {
        sessions: train.len(),
        sequential_sessions_per_s: train.len() as f64 / tr_seq,
        threads1_sessions_per_s: train.len() as f64 / tr_at(1),
        threads2_sessions_per_s: train.len() as f64 / tr_at(2),
        threads4_sessions_per_s: train.len() as f64 / tr_at(4),
        threads8_sessions_per_s: train.len() as f64 / tr_at(8),
    };
    eprintln!(
        "training: seq {:.1}, 1t {:.1}, 2t {:.1}, 4t {:.1}, 8t {:.1} sessions/s",
        training.sequential_sessions_per_s,
        training.threads1_sessions_per_s,
        training.threads2_sessions_per_s,
        training.threads4_sessions_per_s,
        training.threads8_sessions_per_s
    );

    // --- end-to-end train + detect -----------------------------------------
    // Seed-style baseline: what the pipeline cost before this PR — one
    // thread, linear-scan Spell matching everywhere.
    let seed_trainer = anomaly::Trainer {
        use_linear_matcher: true,
        ..anomaly::Trainer::default()
    };
    let e2e_seed = time_median(reps, || {
        let d = seed_trainer.train_sequential(&train);
        d.detect_job(&eval).problematic_count()
    });
    let e2e_seq = time_median(reps, || {
        let il = IntelLog::train_sequential(&train);
        il.detect_job_sequential(&eval).problematic_count()
    });
    let e2e_par = time_median(reps, || {
        let il = IntelLog::train(&train);
        il.detect_job(&eval).problematic_count()
    });
    let end_to_end = EndToEndStats {
        train_sessions: train.len(),
        eval_sessions: eval.len(),
        seed_baseline_s: e2e_seed,
        sequential_s: e2e_seq,
        parallel_s: e2e_par,
        speedup_vs_seed: e2e_seed / e2e_par,
        speedup_vs_sequential: e2e_seq / e2e_par,
    };
    eprintln!(
        "end-to-end: seed baseline {:.2}s, sequential {:.2}s, parallel {:.2}s ({:.1}x vs seed)",
        end_to_end.seed_baseline_s,
        end_to_end.sequential_s,
        end_to_end.parallel_s,
        end_to_end.speedup_vs_seed
    );

    // --- observability overhead + per-stage breakdown -----------------------
    // `e2e_par` above ran with the obs layer compiled in but disabled — that
    // is the baseline. Now the same workload with recording on.
    obs::reset();
    obs::enable();
    let e2e_obs = time_median(reps, || {
        let il = IntelLog::train(&train);
        il.detect_job(&eval).problematic_count()
    });
    // Clean single pass for the breakdown, so stage counts are per-run, not
    // multiplied by `reps`.
    obs::reset();
    {
        let il = IntelLog::train(&train);
        std::hint::black_box(il.detect_job(&eval).problematic_count());
    }
    obs::disable();
    let observability = ObservabilityStats {
        disabled_s: e2e_par,
        enabled_s: e2e_obs,
        overhead_pct: (e2e_obs - e2e_par) / e2e_par * 100.0,
    };
    eprintln!(
        "observability: disabled {:.3}s, enabled {:.3}s ({:+.1}% overhead)",
        observability.disabled_s, observability.enabled_s, observability.overhead_pct
    );
    let mut stage_breakdown = StageBreakdown {
        counters: Default::default(),
        span_count: Default::default(),
        span_total_us: Default::default(),
        span_p99_us: Default::default(),
    };
    for m in obs::snapshot() {
        match m {
            obs::MetricSnapshot::Counter { name, value }
            | obs::MetricSnapshot::Gauge { name, value } => {
                stage_breakdown.counters.insert(name, value);
            }
            obs::MetricSnapshot::Histogram { name, hist } => {
                stage_breakdown.span_count.insert(name.clone(), hist.count);
                stage_breakdown
                    .span_total_us
                    .insert(name.clone(), hist.sum_us);
                stage_breakdown.span_p99_us.insert(name, hist.p99_us);
            }
        }
    }

    let report = BenchReport {
        smoke,
        reps,
        spell: spell_stats,
        adapters,
        extraction,
        hwgraph,
        detection,
        training,
        end_to_end,
        observability,
        stage_breakdown,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("bench_pipeline: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
