//! Table 1 — lines and percentages of natural-language logs.
//!
//! Paper: Spark 100%, MapReduce 91.8%, Tez 92.2%, Yarn 97.6%,
//! nova-compute 100% (nova after excluding periodic resource reports).
//!
//! Run with: `cargo run --release -p intellog-bench --bin table1 [jobs]`

use dlasim::{SystemKind, WorkloadGen};
use lognlp::is_natural_language;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    println!("Table 1: lines and percentages of natural language logs");
    println!("({jobs} generated jobs per analytics system)\n");
    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "System", "NL logs", "total logs", "% NL"
    );

    let systems = [
        SystemKind::Spark,
        SystemKind::MapReduce,
        SystemKind::Tez,
        SystemKind::Yarn,
        SystemKind::Nova,
    ];
    for system in systems {
        let mut gen = WorkloadGen::new(1000 + system as u64, 8);
        let n_jobs = match system {
            SystemKind::Yarn | SystemKind::Nova => jobs * 4,
            _ => jobs,
        };
        let (mut nl, mut total) = (0u64, 0u64);
        for _ in 0..n_jobs {
            let cfg = gen.training_config(system);
            let job = dlasim::generate(&cfg, None);
            for session in &job.sessions {
                for line in &session.lines {
                    total += 1;
                    if is_natural_language(&line.message) {
                        nl += 1;
                    }
                }
            }
        }
        println!(
            "{:<14} {:>10} {:>12} {:>9.1}%",
            system.name(),
            nl,
            total,
            100.0 * nl as f64 / total.max(1) as f64
        );
    }
    println!("\npaper: Spark 100%, MapReduce 91.8%, Tez 92.2%, Yarn 97.6%, nova-compute 100%");
}
