//! Gateway soak: many tenants, churning connections and sessions, hot
//! reloads mid-stream, and shard add/drain chaos — all at once, for many
//! rounds — then a full drain and a hard accounting audit.
//!
//! What runs concurrently:
//!
//! * one driver thread per tenant, each looping rounds of connect →
//!   `TENANT` → stream a fault-injected dlasim job (faults rotate through
//!   session kills, node failures, network failures) → `END` every
//!   session → disconnect (connection churn);
//! * a chaos thread alternating `ADDSHARD` and `DRAINSHARD` of a live
//!   shard, so sessions are snapshot-moved while their lines are in
//!   flight;
//! * a reload thread hot-`LOAD`ing each tenant's model file round-robin,
//!   so leases pin model versions while the registry swaps under them.
//!
//! Afterwards the soak asserts the invariants the gateway guarantees:
//! zero dropped lines under `block` backpressure, zero protocol errors,
//! every line and every session attributed to its tenant (nothing lost
//! across moves, reloads, or connection churn), and a drain that leaves
//! no session live anywhere.
//!
//! Usage: `cargo run --release -p intellog-bench --bin soak_gateway --
//! [--smoke] [--tenants N] [--rounds N]`. `--smoke` is the CI
//! configuration (seconds, not minutes). Exit status is the verdict.

use dlasim::{FaultKind, SystemKind};
use intellog_bench::training_sessions;
use intellog_core::sessions_from_job;
use intellog_gateway::{Gateway, GatewayConfig};
use intellog_serve::{Backpressure, ModelStore, ServeClient, TenantRegistry};
use std::path::PathBuf;
use std::time::Duration;
use sync::Arc;

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::Spark,
    SystemKind::MapReduce,
    SystemKind::Tez,
    SystemKind::TensorFlow,
];
const FAULTS: [Option<FaultKind>; 4] = [
    Some(FaultKind::SessionKill),
    Some(FaultKind::NodeFailure),
    None,
    Some(FaultKind::NetworkFailure),
];

/// What one tenant driver sent, for the final audit.
struct SentTotals {
    tenant: String,
    sessions: u64,
    lines: u64,
}

/// Stream `rounds` fault-injected jobs for one tenant, a fresh connection
/// per round, ENDing every session. Returns the exact totals sent.
fn drive_tenant(
    addr: &str,
    tenant: String,
    tenant_index: usize,
    system: SystemKind,
    rounds: usize,
    jobs_per_round: usize,
) -> Result<SentTotals, String> {
    let mut sessions = 0u64;
    let mut lines = 0u64;
    for round in 0..rounds {
        let mut client =
            ServeClient::connect(addr).map_err(|e| format!("{tenant}: connect: {e}"))?;
        client
            .tenant(&tenant)
            .map_err(|e| format!("{tenant}: TENANT: {e}"))?;
        let mut gen = dlasim::WorkloadGen::new(1000 + 7 * tenant_index as u64 + round as u64, 8);
        let mut batch = Vec::new();
        for j in 0..jobs_per_round {
            let cfg = gen.detection_config(system, j);
            let fault = FAULTS[(round + j) % FAULTS.len()];
            let plan = fault.map(|k| gen.fault_plan(k));
            let job = dlasim::generate(&cfg, plan.as_ref());
            for mut s in sessions_from_job(&job) {
                if s.lines.is_empty() {
                    // an END with no prior LOG never opens a session
                    // server-side, so it must not count here either
                    continue;
                }
                // round-qualified ids: reopening an id later must count as
                // a fresh session, so make them unique for the audit
                s.id = format!("r{round}j{j}-{}", s.id);
                batch.push(s);
            }
        }
        // Interleave the round's sessions chunk by chunk with light pacing:
        // every session stays open for most of the round, so the chaos
        // thread's ADDSHARD/DRAINSHARD always catches live state to move.
        const CHUNK: usize = 4;
        let max_chunks = batch
            .iter()
            .map(|s| s.lines.len().div_ceil(CHUNK))
            .max()
            .unwrap_or(0);
        for c in 0..max_chunks {
            for s in &batch {
                for line in s.lines.iter().skip(c * CHUNK).take(CHUNK) {
                    client
                        .log(&s.id, line)
                        .map_err(|e| format!("{tenant}: LOG: {e}"))?;
                    lines += 1;
                }
            }
            client
                .flush()
                .map_err(|e| format!("{tenant}: flush: {e}"))?;
            sync::thread::sleep(Duration::from_millis(3));
        }
        for s in &batch {
            client
                .end(&s.id)
                .map_err(|e| format!("{tenant}: END: {e}"))?;
            sessions += 1;
        }
        // barrier: everything this round sent is parsed and routed before
        // the connection drops
        client.ping().map_err(|e| format!("{tenant}: ping: {e}"))?;
    }
    Ok(SentTotals {
        tenant,
        sessions,
        lines,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut tenants: Option<usize> = None;
    let mut rounds: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--tenants" => tenants = it.next().and_then(|v| v.parse().ok()),
            "--rounds" => rounds = it.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!(
                    "soak_gateway: unknown argument {other}\n\
                     usage: soak_gateway [--smoke] [--tenants N] [--rounds N]"
                );
                std::process::exit(2);
            }
        }
    }
    let tenants = tenants.unwrap_or(if smoke { 4 } else { 6 });
    let rounds = rounds.unwrap_or(if smoke { 2 } else { 4 });
    let jobs_per_round = if smoke { 1 } else { 2 };
    let chaos_cycles = if smoke { 2 } else { 6 };

    eprintln!("soak_gateway: tenants={tenants} rounds={rounds} jobs/round={jobs_per_round}");

    // One model file per tenant (reloaded mid-soak by the reload thread).
    let registry = Arc::new(TenantRegistry::new());
    let mut model_paths: Vec<(String, PathBuf)> = Vec::new();
    for i in 0..tenants {
        let name = format!("tenant{i}");
        let system = SYSTEMS[i % SYSTEMS.len()];
        let detector = anomaly::Trainer::default().train(&training_sessions(
            system,
            if smoke { 1 } else { 2 },
            42 + i as u64,
        ));
        let path =
            std::env::temp_dir().join(format!("intellog-soak-{}-{name}.model", std::process::id()));
        ModelStore::save(&path, &detector).expect("save model");
        registry.register(&name, Arc::new(detector));
        model_paths.push((name, path));
    }

    let cfg = GatewayConfig {
        shards: 4,
        queue_capacity: 1024,
        backpressure: Backpressure::Block,
        idle_timeout: Duration::from_secs(300),
        ring_capacity: 16384,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::bind_with_registry(&cfg, Arc::clone(&registry)).expect("bind");
    let (addr, join) = gateway.spawn().expect("spawn gateway");
    let addr = addr.to_string();

    // --- tenant drivers ---------------------------------------------------
    let mut drivers = Vec::new();
    for (i, (name, _)) in model_paths.iter().enumerate() {
        let addr = addr.clone();
        let name = name.clone();
        let system = SYSTEMS[i % SYSTEMS.len()];
        drivers.push(
            sync::thread::Builder::new()
                .name(format!("soak-{name}"))
                .spawn(move || drive_tenant(&addr, name, i, system, rounds, jobs_per_round))
                .expect("spawn driver"),
        );
    }

    // --- chaos: shard churn while traffic flows ---------------------------
    let chaos_addr = addr.clone();
    let chaos = sync::thread::Builder::new()
        .name("soak-chaos".into())
        .spawn(move || -> Result<(u64, u64), String> {
            let mut ctl =
                ServeClient::connect(&chaos_addr).map_err(|e| format!("chaos: connect: {e}"))?;
            let (mut added, mut moved) = (0u64, 0u64);
            for _ in 0..chaos_cycles {
                sync::thread::sleep(Duration::from_millis(25));
                ctl.add_shard()
                    .map_err(|e| format!("chaos: ADDSHARD: {e}"))?;
                added += 1;
                sync::thread::sleep(Duration::from_millis(25));
                // drain the lowest-indexed live shard ("kill" it)
                let stats = ctl.stats().map_err(|e| format!("chaos: STATS: {e}"))?;
                let victim = stats
                    .per_shard
                    .iter()
                    .map(|s| s.shard)
                    .min()
                    .ok_or("chaos: no live shard")?;
                moved += ctl
                    .drain_shard(victim)
                    .map_err(|e| format!("chaos: DRAINSHARD {victim}: {e}"))?
                    as u64;
            }
            Ok((added, moved))
        })
        .expect("spawn chaos");

    // --- hot reloads while leases are live --------------------------------
    let reload_addr = addr.clone();
    let reload_paths = model_paths.clone();
    let reload = sync::thread::Builder::new()
        .name("soak-reload".into())
        .spawn(move || -> Result<u64, String> {
            let mut ctl =
                ServeClient::connect(&reload_addr).map_err(|e| format!("reload: connect: {e}"))?;
            let mut reloads = 0u64;
            for (name, path) in reload_paths.iter().cycle().take(2 * reload_paths.len()) {
                sync::thread::sleep(Duration::from_millis(30));
                ctl.load(name, path.to_str().expect("utf8 temp path"))
                    .map_err(|e| format!("reload: LOAD {name}: {e}"))?;
                reloads += 1;
            }
            Ok(reloads)
        })
        .expect("spawn reload");

    // --- join everything, then audit --------------------------------------
    let mut failures: Vec<String> = Vec::new();
    let mut sent: Vec<SentTotals> = Vec::new();
    for d in drivers {
        match d.join().expect("driver thread") {
            Ok(totals) => sent.push(totals),
            Err(e) => failures.push(e),
        }
    }
    let (shards_added, sessions_moved_by_chaos) = match chaos.join().expect("chaos thread") {
        Ok(v) => v,
        Err(e) => {
            failures.push(e);
            (0, 0)
        }
    };
    let reloads_done = match reload.join().expect("reload thread") {
        Ok(v) => v,
        Err(e) => {
            failures.push(e);
            0
        }
    };

    let mut ctl = ServeClient::connect(&addr).expect("audit connect");
    ctl.drain().expect("final DRAIN");
    let stats = ctl.stats().expect("final STATS");

    let total_sessions: u64 = sent.iter().map(|t| t.sessions).sum();
    let total_lines: u64 = sent.iter().map(|t| t.lines).sum();
    eprintln!(
        "soak_gateway: sent {total_sessions} sessions / {total_lines} lines across {} tenants; \
         {shards_added} shards added, {sessions_moved_by_chaos} sessions chaos-moved, \
         {reloads_done} hot reloads",
        sent.len()
    );

    let mut check = |ok: bool, msg: String| {
        if !ok {
            failures.push(msg);
        }
    };
    check(
        stats.dropped == 0,
        format!("block backpressure shed {} lines", stats.dropped),
    );
    check(
        stats.protocol_errors == 0,
        format!("{} protocol errors", stats.protocol_errors),
    );
    check(
        stats.ingested == total_lines,
        format!("ingested {} != sent {total_lines}", stats.ingested),
    );
    check(
        stats.sessions_live == 0,
        format!("{} sessions still live after drain", stats.sessions_live),
    );
    check(
        sessions_moved_by_chaos > 0,
        "chaos never caught a live session (drains raced past all traffic)".to_string(),
    );
    check(
        stats.rebalances >= 2 * shards_added,
        format!(
            "expected >= {} rebalances, saw {}",
            2 * shards_added,
            stats.rebalances
        ),
    );
    for t in &sent {
        let snap = stats.per_tenant.iter().find(|p| p.tenant == t.tenant);
        match snap {
            None => check(false, format!("{}: no tenant stats", t.tenant)),
            Some(p) => {
                check(
                    p.lines == t.lines,
                    format!("{}: lines {} != sent {}", t.tenant, p.lines, t.lines),
                );
                check(
                    p.sessions_opened == t.sessions,
                    format!(
                        "{}: opened {} != sent {} (lost or duplicated sessions)",
                        t.tenant, p.sessions_opened, t.sessions
                    ),
                );
                check(
                    p.sessions_closed == t.sessions,
                    format!(
                        "{}: closed {} != sent {} (unclean drain)",
                        t.tenant, p.sessions_closed, t.sessions
                    ),
                );
                check(
                    p.sessions_live == 0,
                    format!("{}: {} live after drain", t.tenant, p.sessions_live),
                );
                check(
                    p.reloads >= 2,
                    format!("{}: only {} reloads landed", t.tenant, p.reloads),
                );
            }
        }
    }

    ctl.shutdown().expect("SHUTDOWN");
    join.join().expect("gateway thread").expect("gateway run");
    for (_, path) in &model_paths {
        let _ = std::fs::remove_file(path);
    }

    if failures.is_empty() {
        eprintln!("soak_gateway: PASS");
    } else {
        for f in &failures {
            eprintln!("soak_gateway: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
