//! Serving-path benchmark: spins up an in-process `intellog-gateway`
//! (the event-driven connection front end over the sharded serve data
//! plane) and replays simulated workloads through the loopback socket,
//! emitting a machine-readable `BENCH_serve.json`.
//!
//! Sections:
//!
//! * `scaling` — ingestion throughput (lines/s, median of `--reps` runs)
//!   at 1/2/4/8 shards with lossless `block` backpressure and 4 concurrent
//!   replay connections (a single sender saturates its own socket loop
//!   long before the shards), plus the per-run feed-latency p50/p99 and
//!   drop counters (must be 0);
//! * `connections` — throughput at a fixed shard count as the number of
//!   concurrent client connections grows 1→8, exercising the gateway's
//!   readiness sweep rather than the detector;
//! * `backpressure` — a deliberately undersized queue driven with each
//!   shedding policy, recording how many lines were dropped vs ingested
//!   (`block` must drop nothing; the drop-* policies must shed);
//! * `correctness_verified` — before any timing, one replay runs with
//!   verification on and asserts the online verdicts equal offline
//!   `detect_session` for every session.
//!
//! Usage: `cargo run --release -p intellog-bench --bin bench_serve --
//! [--smoke] [--out PATH] [--reps N]`. `--smoke` shrinks the workload so
//! CI can validate the emitter in seconds; its numbers are not meaningful.

use anomaly::Detector;
use dlasim::SystemKind;
use intellog_bench::training_sessions;
use intellog_gateway::{Gateway, GatewayConfig};
use intellog_serve::{run_replay, Backpressure, ReplayConfig, ReplayOutcome};
use serde::Serialize;
use std::time::Duration;
use sync::Arc;

#[derive(Serialize)]
struct ShardRunStats {
    shards: usize,
    connections: usize,
    sessions: usize,
    lines: usize,
    lines_per_s: f64,
    dropped: u64,
    feed_p50_us: u64,
    feed_p99_us: u64,
}

#[derive(Serialize)]
struct BackpressureStats {
    policy: String,
    queue_capacity: usize,
    lines: usize,
    ingested: u64,
    dropped: u64,
}

#[derive(Serialize)]
struct BenchReport {
    smoke: bool,
    reps: usize,
    correctness_verified: bool,
    scaling: Vec<ShardRunStats>,
    connections: Vec<ShardRunStats>,
    backpressure: Vec<BackpressureStats>,
}

fn gateway_config(
    shards: usize,
    queue_capacity: usize,
    backpressure: Backpressure,
) -> GatewayConfig {
    GatewayConfig {
        shards,
        queue_capacity,
        backpressure,
        // sessions must never be evicted mid-replay or verdicts would split
        idle_timeout: Duration::from_secs(300),
        ring_capacity: 8192,
        ..GatewayConfig::default()
    }
}

/// Spin up a fresh gateway, replay one workload through it, shut it down.
fn one_run(detector: &Arc<Detector>, cfg: &GatewayConfig, replay: &ReplayConfig) -> ReplayOutcome {
    let gateway = Gateway::bind(cfg, Arc::clone(detector)).expect("bind loopback");
    let (addr, join) = gateway.spawn().expect("spawn gateway");
    let outcome = run_replay(&addr.to_string(), detector, replay).expect("replay");
    let mut ctl = intellog_serve::ServeClient::connect(&addr.to_string()).expect("ctl");
    ctl.shutdown().expect("shutdown");
    join.join().expect("gateway thread").expect("gateway run");
    outcome
}

/// Median-throughput run at one (shards, connections) point.
fn median_point(
    detector: &Arc<Detector>,
    shards: usize,
    connections: usize,
    replay: &ReplayConfig,
    reps: usize,
) -> ShardRunStats {
    let cfg = gateway_config(shards, 1024, Backpressure::Block);
    let replay = ReplayConfig {
        connections,
        ..replay.clone()
    };
    let mut runs: Vec<ReplayOutcome> = (0..reps.max(1))
        .map(|_| one_run(detector, &cfg, &replay))
        .collect();
    runs.sort_by(|a, b| a.lines_per_s.partial_cmp(&b.lines_per_s).unwrap());
    let median = &runs[runs.len() / 2];
    assert_eq!(median.stats.dropped, 0, "block backpressure is lossless");
    ShardRunStats {
        shards,
        connections,
        sessions: median.sessions,
        lines: median.lines,
        lines_per_s: median.lines_per_s,
        dropped: median.stats.dropped,
        feed_p50_us: median
            .stats
            .per_shard
            .iter()
            .map(|s| s.feed_p50_us)
            .max()
            .unwrap_or(0),
        feed_p99_us: median
            .stats
            .per_shard
            .iter()
            .map(|s| s.feed_p99_us)
            .max()
            .unwrap_or(0),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut reps: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("bench_serve: --out requires a path");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                reps = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bench_serve: --reps requires a positive integer");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!(
                    "bench_serve: unknown argument {other}\n\
                     usage: bench_serve [--smoke] [--out PATH] [--reps N]"
                );
                std::process::exit(2);
            }
        }
    }
    let reps = reps.unwrap_or(if smoke { 1 } else { 5 });
    let (train_jobs, replay_jobs) = if smoke { (1, 1) } else { (4, 8) };

    eprintln!("bench_serve: smoke={smoke} reps={reps}");
    let detector: Arc<Detector> = Arc::new(anomaly::Trainer::default().train(&training_sessions(
        SystemKind::Spark,
        train_jobs,
        42,
    )));

    // --- correctness gate before any timing -------------------------------
    // Multi-connection on purpose: interleaved sockets into the readiness
    // sweep must still produce verdicts identical to offline detection.
    let verify_cfg = ReplayConfig {
        system: SystemKind::Spark,
        jobs: replay_jobs,
        seed: 9,
        verify: true,
        connections: 4,
        ..ReplayConfig::default()
    };
    let verified = one_run(
        &detector,
        &gateway_config(4, 1024, Backpressure::Block),
        &verify_cfg,
    );
    assert!(
        verified.mismatches.is_empty(),
        "serve must match offline detection before timing:\n{}",
        verified.mismatches.join("\n")
    );
    eprintln!(
        "correctness: {} sessions over 4 connections, online==offline, {} problematic",
        verified.sessions, verified.online_problematic
    );

    // --- shard scaling -----------------------------------------------------
    let timing_cfg = ReplayConfig {
        verify: false, // timing only; correctness is gated above
        ..verify_cfg
    };
    let mut scaling = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let stats = median_point(&detector, shards, 4, &timing_cfg, reps);
        eprintln!(
            "scaling: {} shard(s) x{} conns: {:.0} lines/s, p50/p99 {}/{} µs",
            shards, stats.connections, stats.lines_per_s, stats.feed_p50_us, stats.feed_p99_us
        );
        scaling.push(stats);
    }

    // --- connection scaling -------------------------------------------------
    let mut connections = Vec::new();
    for conns in [1usize, 2, 4, 8] {
        let stats = median_point(&detector, 4, conns, &timing_cfg, reps);
        eprintln!(
            "connections: {} conn(s) x4 shards: {:.0} lines/s",
            conns, stats.lines_per_s
        );
        connections.push(stats);
    }

    // --- backpressure policies under an undersized queue --------------------
    let mut backpressure = Vec::new();
    for policy in [
        Backpressure::Block,
        Backpressure::DropNewest,
        Backpressure::DropOldest,
    ] {
        let queue_capacity = 4;
        let cfg = gateway_config(1, queue_capacity, policy);
        let outcome = one_run(&detector, &cfg, &timing_cfg);
        assert_eq!(
            outcome.stats.ingested + outcome.stats.dropped,
            outcome.lines as u64,
            "every line is either processed or counted as shed"
        );
        if matches!(policy, Backpressure::Block) {
            assert_eq!(outcome.stats.dropped, 0, "block never sheds");
        }
        eprintln!(
            "backpressure: {} @cap{}: ingested {} dropped {}",
            policy.name(),
            queue_capacity,
            outcome.stats.ingested,
            outcome.stats.dropped
        );
        backpressure.push(BackpressureStats {
            policy: policy.name().to_string(),
            queue_capacity,
            lines: outcome.lines,
            ingested: outcome.stats.ingested,
            dropped: outcome.stats.dropped,
        });
    }

    let report = BenchReport {
        smoke,
        reps,
        correctness_verified: true,
        scaling,
        connections,
        backpressure,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(e) = std::fs::write(&out_path, format!("{json}\n")) {
        eprintln!("bench_serve: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
