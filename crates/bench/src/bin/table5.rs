//! Table 5 — log and HW-graph statistics for the evaluated systems.
//!
//! Paper shape: entity groups are 5–10× fewer than the messages of one
//! session (critical groups 10–50× fewer); subroutines are short enough for
//! manual analysis (max ≈ 10–19 keys).
//!
//! Run with: `cargo run --release -p intellog-bench --bin table5 [jobs]`

use dlasim::SystemKind;
use intellog_bench::training_sessions;
use intellog_core::IntelLog;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    println!("Table 5: log and HW-graph statistics ({jobs} training jobs per system)\n");
    println!(
        "{:<11} {:>12} {:>16} {:>30}",
        "Framework", "session len", "groups all/crit", "subroutine max/avg/avg-crit"
    );
    for system in SystemKind::EVALUATED {
        let sessions = training_sessions(system, jobs, 70 + system as u64);
        let il = IntelLog::train(&sessions);
        let s = &il.graph().stats;
        println!(
            "{:<11} {:>12.0} {:>16} {:>30}",
            system.name(),
            s.avg_session_len,
            format!("{} / {}", s.groups_all, s.groups_critical),
            format!(
                "{} / {:.1} / {:.1}",
                s.sub_len_max, s.sub_len_avg_all, s.sub_len_avg_crit
            ),
        );
    }
    println!("\npaper: Spark 347, 45/10, 10/1.2/2.3 | MapReduce 137, 35/13, 19/1.7/2.8 | Tez 304, 59/27, 14/2.7/4.6");
}
