//! Figures 3 & 4 — POS tagging of a log key through its sample message, and
//! the full log-key → Intel-Key transformation.
//!
//! Run with: `cargo run -p intellog-bench --bin figure34`

use extract::{FieldCategory, IntelExtractor};
use lognlp::{tag, tag_key_with_sample, tokenize};
use spell::SpellParser;

fn main() {
    // ---- Figure 3: '* MapTask metrics system' tagged via its sample. ----
    println!("Figure 3: POS tagging on a log key\n");
    let key_text = "* MapTask metrics system";
    let sample_text = "Starting MapTask metrics system";
    println!("log key:        {key_text}");
    println!("sample message: {sample_text}\n");
    let sample_tagged = tag(&tokenize(sample_text));
    print!("tagged sample:  ");
    for t in &sample_tagged {
        print!("{}/{} ", t.token.text, t.tag);
    }
    println!();
    let key_tagged = tag_key_with_sample(&tokenize(key_text), &tokenize(sample_text));
    print!("tagged key:     ");
    for t in &key_tagged {
        print!("{}/{} ", t.token.text, t.tag);
    }
    println!("\n");

    // ---- Figure 4: the Spark task-finish key becomes an Intel Key. ----
    println!("Figure 4: transforming a log key to an Intel Key\n");
    let mut parser = SpellParser::default();
    let m1 = "Finished task 0.0 in stage 1.0 TID 42. 2264 bytes result sent to driver";
    let m2 = "Finished task 3.0 in stage 1.0 TID 45. 912 bytes result sent to driver";
    let out = parser.parse_message(m1);
    parser.parse_message(m2);
    let key = parser.key(out.key_id);
    println!("messages:");
    println!("  {m1}");
    println!("  {m2}");
    println!("log key:\n  {}\n", key.render());

    let ik = IntelExtractor::new().build(key);
    println!("Intel Key:");
    println!(
        "  entities:   {:?}  (unit word 'bytes' omitted)",
        ik.entity_phrases()
    );
    for f in &ik.fields {
        match f.category {
            FieldCategory::Identifier => println!(
                "  identifier: position {} type {}",
                f.pos,
                f.id_type.as_deref().unwrap_or("?")
            ),
            FieldCategory::Value => println!(
                "  value:      position {} ({})",
                f.pos,
                f.name.as_deref().unwrap_or("?")
            ),
            FieldCategory::Locality => println!("  locality:   position {}", f.pos),
            FieldCategory::Skipped => {}
        }
    }
    for op in &ik.operations {
        println!("  operation:  {op}");
    }
}
