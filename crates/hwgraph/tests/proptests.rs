//! Property-based tests for HW-graph invariants.

use hwgraph::{
    group_entities, longest_common_phrase, GroupRelations, Hierarchy, Lifespan, Subroutine,
};
use proptest::prelude::*;
use spell::KeyId;
use std::collections::HashMap;

fn phrase() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("block"),
            Just("manager"),
            Just("task"),
            Just("map"),
            Just("output"),
            Just("security"),
            Just("shuffle"),
            Just("memory"),
            Just("store"),
            Just("driver"),
        ],
        1..4,
    )
    .prop_map(|ws| {
        let mut v: Vec<&str> = Vec::new();
        for w in ws {
            if v.last() != Some(&w) {
                v.push(w);
            }
        }
        v.join(" ")
    })
}

proptest! {
    /// LCP is symmetric and its result is a sub-phrase of both inputs.
    #[test]
    fn lcp_symmetric_and_contained(a in phrase(), b in phrase()) {
        let ab = longest_common_phrase(&a, &b);
        let ba = longest_common_phrase(&b, &a);
        prop_assert_eq!(ab.clone(), ba);
        if let Some(c) = ab {
            prop_assert!(!c.is_empty());
            let cw: Vec<&str> = c.split(' ').collect();
            for p in [&a, &b] {
                let pw: Vec<&str> = p.split(' ').collect();
                prop_assert!(pw.windows(cw.len()).any(|w| w == cw.as_slice()),
                    "common {:?} not contiguous in {:?}", c, p);
            }
        }
    }

    /// Every entity ends up in at least one group, and the reverse index is
    /// consistent with group membership.
    #[test]
    fn grouping_total_and_consistent(ents in prop::collection::vec(phrase(), 1..15)) {
        let g = group_entities(ents.clone());
        for e in &ents {
            let gs = g.groups_of(e);
            prop_assert!(!gs.is_empty(), "{e} has no group");
            for &gi in gs {
                prop_assert!(g.groups[gi].entities.contains(e));
            }
        }
        for (gi, gr) in g.groups.iter().enumerate() {
            for e in &gr.entities {
                prop_assert!(g.groups_of(e).contains(&gi));
            }
        }
    }

    /// The subroutine learner: `before` is asymmetric, and `critical` +
    /// `keys` are consistent after any instance stream.
    #[test]
    fn subroutine_invariants(
        instances in prop::collection::vec(prop::collection::vec(0u32..6, 1..8), 1..10)
    ) {
        let mut sub = Subroutine::default();
        for inst in &instances {
            let keys: Vec<KeyId> = inst.iter().map(|&k| KeyId(k)).collect();
            sub.update(&keys);
        }
        for &(a, b) in &sub.before {
            prop_assert!(!sub.before.contains(&(b, a)), "symmetric before pair");
            prop_assert!(sub.keys.contains(&a) && sub.keys.contains(&b));
        }
        for k in &sub.critical {
            prop_assert!(sub.keys.contains(k));
            // critical keys really appear in every instance
            for inst in &instances {
                prop_assert!(inst.iter().any(|&x| KeyId(x) == *k));
            }
        }
        prop_assert_eq!(sub.instances as usize, instances.len());
    }

    /// Hierarchy: parents are acyclic, depths consistent, every group placed
    /// exactly once in depth-first order.
    #[test]
    fn hierarchy_wellformed(
        n in 1usize..8,
        raw in prop::collection::vec((0u64..100, 1u64..50), 1..8),
    ) {
        // one synthetic session assigning a lifespan to each group index
        let mut sessions: Vec<HashMap<usize, Lifespan>> = Vec::new();
        let mut m = HashMap::new();
        for (g, &(start, len)) in raw.iter().enumerate().take(n) {
            m.insert(g, Lifespan { first: start, last: start + len });
        }
        sessions.push(m);
        let rel = GroupRelations::compute(n, &sessions);
        let h = Hierarchy::build(&rel);
        prop_assert_eq!(h.nodes.len(), n);
        let df = h.depth_first();
        let mut seen = std::collections::HashSet::new();
        for g in &df {
            prop_assert!(seen.insert(*g), "duplicate in depth_first");
        }
        prop_assert_eq!(df.len(), n);
        for (g, node) in h.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                prop_assert!(p < n);
                prop_assert_eq!(node.depth, h.nodes[p].depth + 1);
                prop_assert!(h.nodes[p].children.contains(&g));
                // walk to a root without cycling
                let mut cur = g;
                let mut steps = 0;
                while let Some(pp) = h.nodes[cur].parent {
                    cur = pp;
                    steps += 1;
                    prop_assert!(steps <= n, "parent cycle");
                }
            } else {
                prop_assert_eq!(node.depth, 0);
            }
        }
    }
}

/// Historical regression case for `lcp_symmetric_and_contained` (recorded
/// in `proptests.proptest-regressions`), pinned as a plain unit test:
/// "output task" vs "task output" share the words but no common *phrase*
/// longer than one word in the same order.
#[test]
fn lcp_regression_output_task() {
    let a = "output task";
    let b = "task output";
    let ab = longest_common_phrase(a, b);
    let ba = longest_common_phrase(b, a);
    assert_eq!(ab, ba);
    if let Some(c) = ab {
        assert!(!c.is_empty());
        let cw: Vec<&str> = c.split(' ').collect();
        for p in [a, b] {
            let pw: Vec<&str> = p.split(' ').collect();
            assert!(
                pw.windows(cw.len()).any(|w| w == cw.as_slice()),
                "common {c:?} not contiguous in {p:?}"
            );
        }
    }
}
