//! Subroutine construction within an entity group (paper §4.1, Algorithm 2
//! and the `UpdateSubroutine` function of Fig. 5).
//!
//! Within one entity group, the Intel-Key sequence of a session is split
//! into *subroutine instances* by identifier values: a message joins the
//! instance whose identifier-value set is ⊆-comparable with its own;
//! identifier-free messages go to the `NONE` instance. Instances are then
//! grouped by their *signature* — the set of identifier **types** — and per
//! signature a partial order over Intel Keys is learned:
//!
//! * `BEFORE(k1, k2)` survives as long as `k1`'s first occurrence precedes
//!   `k2`'s in every observed instance; one counter-example demotes the pair
//!   to parallel (Fig. 5, `Seq_3`);
//! * a key is **critical** while it appears in every observed instance
//!   (Fig. 5, `Seq_4` demotes `D`).

use extract::IntelMessage;
use serde::{Deserialize, Serialize};
use spell::KeyId;
use std::collections::{BTreeSet, HashMap, HashSet};

/// The signature of a subroutine: the set of identifier types its instances
/// carry (`{"STAGE", "TASK"}`). The empty signature is the `NONE` bucket.
pub type Signature = BTreeSet<String>;

/// A learned subroutine: the ordered key skeleton for one signature.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subroutine {
    /// Identifier-type signature.
    pub signature: Signature,
    /// Keys in first-seen order.
    pub keys: Vec<KeyId>,
    /// Surviving BEFORE pairs (k1 strictly precedes k2 in every instance).
    pub before: BTreeSet<(KeyId, KeyId)>,
    /// Keys observed in *every* instance so far.
    pub critical: BTreeSet<KeyId>,
    /// Number of instances consumed.
    pub instances: u64,
}

impl Subroutine {
    /// `true` if `a BEFORE b` still holds.
    pub fn is_before(&self, a: KeyId, b: KeyId) -> bool {
        self.before.contains(&(a, b))
    }

    /// Consume one instance: the keys of the instance's messages in order.
    pub fn update(&mut self, seq: &[KeyId]) {
        // First-occurrence index per key in this instance.
        let mut first: HashMap<KeyId, usize> = HashMap::new();
        for (i, &k) in seq.iter().enumerate() {
            first.entry(k).or_insert(i);
        }
        if self.instances == 0 {
            self.keys = dedup_in_order(seq);
            for (i, &a) in self.keys.iter().enumerate() {
                for &b in &self.keys[i + 1..] {
                    self.before.insert((a, b));
                }
            }
            self.critical = self.keys.iter().copied().collect();
        } else {
            // Register unseen keys (not critical: they were missing before).
            for &k in &dedup_in_order(seq) {
                if !self.keys.contains(&k) {
                    self.keys.push(k);
                }
            }
            // Break BEFORE pairs contradicted by this instance. Pairs whose
            // keys do not co-occur here are left untouched.
            self.before
                .retain(|&(a, b)| match (first.get(&a), first.get(&b)) {
                    (Some(&ia), Some(&ib)) => ia < ib,
                    _ => true,
                });
            // A key missed by this instance stops being critical (Fig. 5).
            self.critical.retain(|k| first.contains_key(k));
        }
        self.instances += 1;
    }
}

fn dedup_in_order(seq: &[KeyId]) -> Vec<KeyId> {
    let mut seen = HashSet::new();
    seq.iter().copied().filter(|k| seen.insert(*k)).collect()
}

/// One subroutine *instance* recovered from a session (Algorithm 2's
/// `D_vl` entries): the identifier values bind the messages together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubroutineInstance {
    /// Union of identifier values seen (`S_v`); empty for the NONE bucket.
    pub id_values: BTreeSet<String>,
    /// Identifier types seen (the signature this instance belongs to).
    pub signature: Signature,
    /// Message indices (into the session's group-sequence) in order.
    pub message_indices: Vec<usize>,
    /// Key of each message, in order.
    pub keys: Vec<KeyId>,
}

/// Split one session's group-local message sequence into subroutine
/// instances (Algorithm 2 lines 4–15).
pub fn split_instances(messages: &[&IntelMessage]) -> Vec<SubroutineInstance> {
    let mut instances: Vec<SubroutineInstance> = Vec::new();
    // NONE bucket is instance 0.
    instances.push(SubroutineInstance {
        id_values: BTreeSet::new(),
        signature: Signature::new(),
        message_indices: Vec::new(),
        keys: Vec::new(),
    });
    for (mi, m) in messages.iter().enumerate() {
        // Values are scoped by their identifier type: bare numerals collide
        // across types ('executor 3' vs 'task 3'), while real-world ids
        // like 'attempt_…_m_000003_0' are naturally self-scoping.
        let ids: BTreeSet<String> = m
            .identifiers
            .iter()
            .map(|(t, v)| format!("{t}:{v}"))
            .collect();
        let types: BTreeSet<String> = m.identifiers.iter().map(|(t, _)| t.clone()).collect();
        if ids.is_empty() {
            instances[0].message_indices.push(mi);
            instances[0].keys.push(m.key_id);
            continue;
        }
        let found = instances[1..]
            .iter()
            .position(|inst| ids.is_subset(&inst.id_values) || inst.id_values.is_subset(&ids))
            .map(|p| p + 1);
        match found {
            Some(ii) => {
                let inst = &mut instances[ii];
                inst.id_values.extend(ids);
                inst.signature.extend(types);
                inst.message_indices.push(mi);
                inst.keys.push(m.key_id);
            }
            None => instances.push(SubroutineInstance {
                id_values: ids,
                signature: types,
                message_indices: vec![mi],
                keys: vec![m.key_id],
            }),
        }
    }
    if instances[0].message_indices.is_empty() {
        instances.remove(0);
    }
    instances
}

/// The per-group subroutine learner: `D_ti` of Algorithm 2, one
/// [`Subroutine`] per signature. (Stored as a vector rather than a
/// signature-keyed map so the type serialises to JSON.)
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubroutineSet {
    /// Learned subroutines, one per signature, in first-seen order.
    pub subs: Vec<Subroutine>,
}

impl SubroutineSet {
    /// The subroutine for a signature, if learned.
    pub fn get(&self, signature: &Signature) -> Option<&Subroutine> {
        self.subs.iter().find(|s| &s.signature == signature)
    }

    fn get_or_insert(&mut self, signature: &Signature) -> &mut Subroutine {
        if let Some(i) = self.subs.iter().position(|s| &s.signature == signature) {
            &mut self.subs[i]
        } else {
            self.subs.push(Subroutine {
                signature: signature.clone(),
                ..Default::default()
            });
            self.subs.last_mut().expect("just pushed")
        }
    }

    /// Consume one session's group-local messages (training).
    pub fn train_session(&mut self, messages: &[&IntelMessage]) {
        for inst in split_instances(messages) {
            self.get_or_insert(&inst.signature).update(&inst.keys);
        }
    }

    /// All learned subroutines.
    pub fn subroutines(&self) -> impl Iterator<Item = &Subroutine> {
        self.subs.iter()
    }

    /// Number of subroutines (signatures).
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` if nothing was learned yet.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Longest key skeleton length over all subroutines.
    pub fn max_len(&self) -> usize {
        self.subs.iter().map(|s| s.keys.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(key: u32, ids: &[(&str, &str)]) -> IntelMessage {
        IntelMessage {
            key_id: KeyId(key),
            session: "s".into(),
            ts_ms: 0,
            identifiers: ids
                .iter()
                .map(|(t, v)| (t.to_string(), v.to_string()))
                .collect(),
            values: vec![],
            localities: vec![],
            entities: vec![],
            operations: vec![],
            text: String::new(),
        }
    }

    #[test]
    fn figure5_subroutine_evolution() {
        // Session 1 has Seq1 = Seq2 = [A, B, C, D]; session 2 has
        // Seq3 = [A, C, B, D] (B/C become parallel) and Seq4 = [A, B, C]
        // (D stops being critical).
        let (a, b, c, d) = (KeyId(0), KeyId(1), KeyId(2), KeyId(3));
        let mut sub = Subroutine::default();
        sub.update(&[a, b, c, d]);
        sub.update(&[a, b, c, d]);
        assert!(sub.is_before(a, b) && sub.is_before(b, c) && sub.is_before(c, d));
        assert_eq!(sub.critical.len(), 4);

        sub.update(&[a, c, b, d]); // Seq3: B and C interchange
        assert!(sub.is_before(a, b) && sub.is_before(a, c));
        assert!(!sub.is_before(b, c) && !sub.is_before(c, b));
        assert!(sub.is_before(b, d) && sub.is_before(c, d));
        assert_eq!(sub.critical.len(), 4);

        sub.update(&[a, b, c]); // Seq4: no D
        assert!(!sub.critical.contains(&d));
        assert!(sub.critical.contains(&a));
        assert_eq!(sub.instances, 4);
    }

    #[test]
    fn instance_splitting_by_identifier_values() {
        // Two concurrent fetcher instances interleave; identifier values
        // route messages to the right instance.
        let ms = [
            msg(0, &[("FETCHER", "1")]),
            msg(0, &[("FETCHER", "2")]),
            msg(1, &[("FETCHER", "1")]),
            msg(1, &[("FETCHER", "2")]),
            msg(2, &[]),
        ];
        let refs: Vec<&IntelMessage> = ms.iter().collect();
        let insts = split_instances(&refs);
        assert_eq!(insts.len(), 3);
        let none = insts.iter().find(|i| i.signature.is_empty()).unwrap();
        assert_eq!(none.keys, [KeyId(2)]);
        for i in insts.iter().filter(|i| !i.signature.is_empty()) {
            assert_eq!(i.keys, [KeyId(0), KeyId(1)]);
            assert_eq!(i.signature, BTreeSet::from(["FETCHER".to_string()]));
        }
    }

    #[test]
    fn subset_identifier_sets_join_one_instance() {
        // A message carrying {task} joins the instance already holding
        // {task, attempt} (⊆-comparability, Algorithm 2 line 9–10).
        let ms = [
            msg(0, &[("TASK", "t1")]),
            msg(1, &[("TASK", "t1"), ("ATTEMPT", "a1")]),
            msg(2, &[("ATTEMPT", "a1")]),
        ];
        let refs: Vec<&IntelMessage> = ms.iter().collect();
        let insts = split_instances(&refs);
        assert_eq!(insts.len(), 1, "{insts:?}");
        assert_eq!(insts[0].keys, [KeyId(0), KeyId(1), KeyId(2)]);
        assert_eq!(
            insts[0].signature,
            BTreeSet::from(["TASK".to_string(), "ATTEMPT".to_string()])
        );
    }

    #[test]
    fn set_trains_per_signature() {
        let mut set = SubroutineSet::default();
        let s1 = [
            msg(0, &[("FETCHER", "1")]),
            msg(1, &[("FETCHER", "1")]),
            msg(9, &[]),
        ];
        let refs: Vec<&IntelMessage> = s1.iter().collect();
        set.train_session(&refs);
        set.train_session(&refs);
        assert_eq!(set.len(), 2); // FETCHER signature + NONE
        let fet = set.get(&BTreeSet::from(["FETCHER".to_string()])).unwrap();
        assert_eq!(fet.keys, [KeyId(0), KeyId(1)]);
        assert!(fet.is_before(KeyId(0), KeyId(1)));
        assert_eq!(set.max_len(), 2);
    }

    #[test]
    fn new_key_in_later_instance_is_not_critical() {
        let mut sub = Subroutine::default();
        sub.update(&[KeyId(0), KeyId(1)]);
        sub.update(&[KeyId(0), KeyId(1), KeyId(5)]);
        assert!(sub.keys.contains(&KeyId(5)));
        assert!(!sub.critical.contains(&KeyId(5)));
        assert!(sub.critical.contains(&KeyId(0)));
    }

    #[test]
    fn repeated_key_uses_first_occurrence() {
        let mut sub = Subroutine::default();
        sub.update(&[KeyId(0), KeyId(1), KeyId(0)]);
        // first(0)=0 < first(1)=1 → before holds even though 0 also appears
        // after 1.
        assert!(sub.is_before(KeyId(0), KeyId(1)));
        assert_eq!(sub.keys, [KeyId(0), KeyId(1)]);
    }
}
