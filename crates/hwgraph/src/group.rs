//! Entity grouping by nomenclature (paper §4.1, Algorithm 1).
//!
//! Correlated entities usually share a common sub-phrase in their names
//! (`block`, `block manager`, `block manager endpoint`) — but entities that
//! share only their *last* words are usually unrelated, because trailing
//! words carry general meanings (`block manager` vs `security manager`).
//! Algorithm 1 folds both observations into a grouping pass over all
//! extracted entities, ordered by ascending word count.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One group of correlated entities, labelled by their common phrase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityGroup {
    /// The group label: the common phrase shared by the members (shrinks as
    /// members join).
    pub name: String,
    /// Member entity phrases.
    pub entities: BTreeSet<String>,
}

/// The result of Algorithm 1: groups plus the reverse index `D_r`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grouping {
    /// The groups (`D` in the paper).
    pub groups: Vec<EntityGroup>,
    /// Reverse index: entity phrase → indices of the groups containing it.
    pub reverse: BTreeMap<String, Vec<usize>>,
}

impl Grouping {
    /// Indices of the groups containing `entity` (empty slice if none).
    pub fn groups_of(&self, entity: &str) -> &[usize] {
        self.reverse.get(entity).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` if there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Options for Algorithm 1 (the ablation benches toggle the rule that
/// distinguishes it from naive common-substring grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupingOptions {
    /// Apply the "common last few words" rule: two multi-word phrases that
    /// share only their trailing words (`block manager` / `security
    /// manager`) are *not* correlated. Disabling this reverts to plain
    /// longest-common-substring grouping.
    pub last_words_rule: bool,
}

impl Default for GroupingOptions {
    fn default() -> GroupingOptions {
        GroupingOptions {
            last_words_rule: true,
        }
    }
}

/// `LongestCommonPhrase` of Algorithm 1 (lines 23–30).
///
/// * If either operand is a single word, the result is that word when it
///   occurs in the other phrase, else empty — a one-word phrase contained in
///   a multi-word phrase is correlated with it.
/// * If two multi-word phrases have **only** their last words in common
///   (`block manager` / `security manager` → `manager`), the phrases are not
///   considered correlated and the result is empty.
/// * Otherwise the result is the longest common contiguous word subsequence.
pub fn longest_common_phrase(g: &str, e: &str) -> Option<String> {
    longest_common_phrase_with(g, e, GroupingOptions::default())
}

/// [`longest_common_phrase`] with explicit options.
pub fn longest_common_phrase_with(g: &str, e: &str, opts: GroupingOptions) -> Option<String> {
    let gw: Vec<&str> = g.split(' ').collect();
    let ew: Vec<&str> = e.split(' ').collect();
    if gw.len() == 1 || ew.len() == 1 {
        let (single, other) = if gw.len() == 1 {
            (&gw, &ew)
        } else {
            (&ew, &gw)
        };
        let w = single[0];
        return if other.contains(&w) {
            Some(w.to_string())
        } else {
            None
        };
    }
    let common = longest_common_word_substring(&gw, &ew)?;
    // "common last few words only" rule: the common phrase is a proper
    // suffix of both phrases → general-meaning tail → not correlated.
    let is_proper_suffix_of_both = common.len() < gw.len()
        && common.len() < ew.len()
        && gw.ends_with(&common)
        && ew.ends_with(&common);
    if opts.last_words_rule && is_proper_suffix_of_both {
        return None;
    }
    Some(common.join(" "))
}

/// Longest common contiguous word run of two word lists. Ties are broken by
/// lexicographic order of the phrase, making the function symmetric in its
/// arguments (grouping must not depend on comparison order).
fn longest_common_word_substring<'a>(a: &[&'a str], b: &[&'a str]) -> Option<Vec<&'a str>> {
    let mut best: Option<(usize, usize)> = None; // (start in a, len)
    let mut dp = vec![0usize; b.len() + 1];
    for i in 0..a.len() {
        let mut prev = 0;
        for j in 0..b.len() {
            let cur = dp[j + 1];
            dp[j + 1] = if a[i] == b[j] { prev + 1 } else { 0 };
            if dp[j + 1] > 0 {
                let len = dp[j + 1];
                let start = i + 1 - len;
                let better = match best {
                    None => true,
                    Some((bs, bl)) => {
                        len > bl || (len == bl && a[start..start + len] < a[bs..bs + bl])
                    }
                };
                if better {
                    best = Some((start, len));
                }
            }
            prev = cur;
        }
    }
    best.map(|(s, l)| a[s..s + l].to_vec())
}

/// Algorithm 1: group a set of entity phrases.
///
/// Entities are processed in ascending word-count order (paper line 1). An
/// entity can join several groups; ungrouped entities found their own group.
pub fn group_entities<I, S>(entities: I) -> Grouping
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    group_entities_with(entities, GroupingOptions::default())
}

/// [`group_entities`] with explicit options (ablation hook).
pub fn group_entities_with<I, S>(entities: I, opts: GroupingOptions) -> Grouping
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut list: Vec<String> = entities.into_iter().map(Into::into).collect();
    list.sort_by_key(|e| (e.split(' ').count(), e.clone()));
    list.dedup();

    let mut groups: Vec<EntityGroup> = Vec::new();
    for e in &list {
        let mut grouped = false;
        for g in groups.iter_mut() {
            if g.entities.contains(e) {
                grouped = true;
                continue;
            }
            if let Some(common) = longest_common_phrase_with(&g.name, e, opts) {
                g.entities.insert(e.clone());
                g.name = common;
                grouped = true;
            }
        }
        if !grouped {
            groups.push(EntityGroup {
                name: e.clone(),
                entities: BTreeSet::from([e.clone()]),
            });
        }
    }

    let mut reverse: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (gi, g) in groups.iter().enumerate() {
        for ent in &g.entities {
            reverse.entry(ent.clone()).or_default().push(gi);
        }
    }
    Grouping { groups, reverse }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcp_single_word_containment() {
        assert_eq!(
            longest_common_phrase("block", "block manager"),
            Some("block".into())
        );
        assert_eq!(
            longest_common_phrase("block manager", "block"),
            Some("block".into())
        );
        assert_eq!(longest_common_phrase("task", "task"), Some("task".into()));
        assert_eq!(longest_common_phrase("block", "task"), None);
        // substring of a word is NOT a common phrase
        assert_eq!(longest_common_phrase("block", "blockage handler"), None);
    }

    #[test]
    fn lcp_last_words_rule() {
        // §4.1: 'block manager' and 'security manager' share only the
        // general-meaning last word → not correlated.
        assert_eq!(
            longest_common_phrase("block manager", "security manager"),
            None
        );
        assert_eq!(longest_common_phrase("map output", "shuffle output"), None);
        // common prefix phrases ARE correlated
        assert_eq!(
            longest_common_phrase("block manager", "block manager endpoint"),
            Some("block manager".into())
        );
        assert_eq!(
            longest_common_phrase("map output", "map task"),
            Some("map".into())
        );
    }

    #[test]
    fn spark_block_family_groups_together() {
        let g = group_entities(["block", "block manager", "block manager endpoint"]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.groups[0].name, "block");
        assert_eq!(g.groups[0].entities.len(), 3);
    }

    #[test]
    fn unrelated_managers_stay_apart() {
        let g = group_entities(["block manager", "security manager"]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn group_name_shrinks_to_common_phrase() {
        let g = group_entities(["map output", "map task", "map completion event"]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.groups[0].name, "map");
    }

    #[test]
    fn mapreduce_map_family_from_paper() {
        // §6.3: group 'map' captures 'map metrics system' and 'map output'.
        let g = group_entities([
            "map task",
            "map metrics system",
            "map output",
            "reduce task",
        ]);
        let map_group = g
            .groups
            .iter()
            .find(|gr| gr.name == "map")
            .expect("map group");
        assert!(map_group.entities.contains("map metrics system"));
        assert!(map_group.entities.contains("map output"));
        assert!(!map_group.entities.contains("reduce task"));
    }

    #[test]
    fn tez_task_family_from_paper() {
        // §6.3: group 'task' captures 'task' and 'TaskAttempt' (camel-split
        // upstream into 'task attempt').
        let g = group_entities(["task", "task attempt"]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.groups[0].name, "task");
    }

    #[test]
    fn reverse_index_lists_memberships() {
        let g = group_entities(["block", "block manager", "security manager"]);
        assert_eq!(g.groups_of("block manager").len(), 1);
        assert_eq!(g.groups_of("security manager").len(), 1);
        assert_ne!(
            g.groups_of("block manager"),
            g.groups_of("security manager")
        );
        assert!(g.groups_of("ghost").is_empty());
    }

    #[test]
    fn entity_can_join_multiple_groups() {
        // 'shuffle' seeds a group; 'map' seeds a group; 'map shuffle'
        // correlates with both (prefix with one, contained word with other).
        let g = group_entities(["shuffle", "map", "map shuffle"]);
        let memberships = g.groups_of("map shuffle");
        assert!(memberships.len() >= 2, "{g:?}");
    }

    #[test]
    fn duplicates_are_ignored() {
        let g = group_entities(["task", "task", "task"]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.groups[0].entities.len(), 1);
    }

    #[test]
    fn ablation_last_words_rule() {
        // With the rule (Algorithm 1): two groups. Without it: one merged
        // group labelled by the general-meaning tail — exactly the
        // over-grouping the paper's rule prevents.
        let with_rule = group_entities(["block manager", "security manager"]);
        assert_eq!(with_rule.len(), 2);
        let without = group_entities_with(
            ["block manager", "security manager"],
            GroupingOptions {
                last_words_rule: false,
            },
        );
        assert_eq!(without.len(), 1);
        assert_eq!(without.groups[0].name, "manager");
    }

    #[test]
    fn deterministic_order() {
        let a = group_entities(["driver", "block", "block manager", "acl"]);
        let b = group_entities(["block manager", "acl", "driver", "block"]);
        assert_eq!(a, b);
    }
}
