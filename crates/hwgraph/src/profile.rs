//! Session profiles: per-session-type workflow models.
//!
//! A system's containers are not homogeneous — a MapReduce job runs an AM
//! session, map sessions and reduce sessions with disjoint workflows.
//! Pooling them into one Algorithm 2 learner empties the critical-key
//! intersections ("a key present in *every* instance" never survives
//! heterogeneity). The paper trains and checks per system; to keep the
//! critical-key machinery of Fig. 5 sharp we cluster training sessions by
//! their *entity-group fingerprint* (Jaccard similarity) and learn the
//! mandatory groups and subroutines per cluster. At detection time a
//! session is checked against its best-matching profile.

use crate::subroutine::SubroutineSet;
use extract::IntelMessage;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One session type: which entity groups its sessions touch and what their
/// subroutines look like.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionProfile {
    /// Union of the entity groups observed across member sessions.
    pub groups: BTreeSet<usize>,
    /// Groups present in *every* member session — their absence from a
    /// matching session is an anomaly (the Spark-19731 signature).
    pub mandatory: BTreeSet<usize>,
    /// Per-group subroutine learners trained on member sessions only.
    pub subroutines: BTreeMap<usize, SubroutineSet>,
    /// Number of member sessions.
    pub sessions_seen: u64,
}

impl SessionProfile {
    /// Jaccard similarity between this profile's group set and a
    /// fingerprint.
    pub fn similarity(&self, fingerprint: &BTreeSet<usize>) -> f64 {
        if self.groups.is_empty() && fingerprint.is_empty() {
            return 1.0;
        }
        let inter = self.groups.intersection(fingerprint).count();
        let union = self.groups.union(fingerprint).count();
        inter as f64 / union.max(1) as f64
    }
}

/// The set of learned session profiles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileSet {
    /// Profiles in creation order.
    pub profiles: Vec<SessionProfile>,
    /// Jaccard threshold for joining an existing profile during training.
    pub threshold: f64,
}

impl ProfileSet {
    /// A profile set with the default clustering threshold.
    pub fn new() -> ProfileSet {
        ProfileSet {
            profiles: Vec::new(),
            threshold: 0.6,
        }
    }

    /// Number of profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// `true` if no profile was learned.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Train on one session: `per_group` holds the session's messages per
    /// entity group.
    pub fn train_session(&mut self, per_group: &BTreeMap<usize, Vec<&IntelMessage>>) {
        let fingerprint: BTreeSet<usize> = per_group.keys().copied().collect();
        let best = self
            .profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.similarity(&fingerprint)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let idx = match best {
            Some((i, sim)) if sim >= self.threshold => i,
            _ => {
                self.profiles.push(SessionProfile {
                    groups: BTreeSet::new(),
                    mandatory: fingerprint.clone(),
                    subroutines: BTreeMap::new(),
                    sessions_seen: 0,
                });
                self.profiles.len() - 1
            }
        };
        let p = &mut self.profiles[idx];
        p.groups.extend(fingerprint.iter().copied());
        p.mandatory.retain(|g| fingerprint.contains(g));
        p.sessions_seen += 1;
        for (&g, msgs) in per_group {
            p.subroutines.entry(g).or_default().train_session(msgs);
        }
    }

    /// Best-matching profile for a fingerprint (detection time), with the
    /// similarity score.
    pub fn best_match_scored(
        &self,
        fingerprint: &BTreeSet<usize>,
    ) -> Option<(usize, &SessionProfile, f64)> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p, p.similarity(fingerprint)))
            .max_by(|a, b| a.2.total_cmp(&b.2))
    }

    /// Best-matching profile for a fingerprint (detection time).
    pub fn best_match(&self, fingerprint: &BTreeSet<usize>) -> Option<(usize, &SessionProfile)> {
        self.best_match_scored(fingerprint).map(|(i, p, _)| (i, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spell::KeyId;

    fn msg(key: u32, ids: &[(&str, &str)]) -> IntelMessage {
        IntelMessage {
            key_id: KeyId(key),
            session: "s".into(),
            ts_ms: 0,
            identifiers: ids
                .iter()
                .map(|(t, v)| (t.to_string(), v.to_string()))
                .collect(),
            values: vec![],
            localities: vec![],
            entities: vec![],
            operations: vec![],
            text: String::new(),
        }
    }

    fn session(groups: &[(usize, Vec<IntelMessage>)]) -> BTreeMap<usize, Vec<IntelMessage>> {
        groups.iter().cloned().collect()
    }

    fn train(ps: &mut ProfileSet, s: &BTreeMap<usize, Vec<IntelMessage>>) {
        let by_ref: BTreeMap<usize, Vec<&IntelMessage>> =
            s.iter().map(|(g, v)| (*g, v.iter().collect())).collect();
        ps.train_session(&by_ref);
    }

    #[test]
    fn heterogeneous_sessions_get_distinct_profiles() {
        let mut ps = ProfileSet::new();
        // "map" sessions touch groups 0,1; "reduce" sessions touch 5,6,7.
        let map_s = session(&[(0, vec![msg(1, &[])]), (1, vec![msg(2, &[])])]);
        let red_s = session(&[
            (5, vec![msg(10, &[])]),
            (6, vec![msg(11, &[])]),
            (7, vec![msg(12, &[])]),
        ]);
        for _ in 0..3 {
            train(&mut ps, &map_s);
            train(&mut ps, &red_s);
        }
        assert_eq!(ps.len(), 2);
        let fp_map: BTreeSet<usize> = [0, 1].into();
        let (i, p) = ps.best_match(&fp_map).unwrap();
        assert_eq!(p.mandatory, fp_map);
        let fp_red: BTreeSet<usize> = [5, 6, 7].into();
        let (j, _) = ps.best_match(&fp_red).unwrap();
        assert_ne!(i, j);
    }

    #[test]
    fn mandatory_shrinks_to_intersection() {
        let mut ps = ProfileSet::new();
        let with_opt = session(&[
            (0, vec![msg(1, &[])]),
            (1, vec![msg(2, &[])]),
            (2, vec![msg(3, &[])]),
        ]);
        let without = session(&[(0, vec![msg(1, &[])]), (1, vec![msg(2, &[])])]);
        train(&mut ps, &with_opt);
        train(&mut ps, &without);
        assert_eq!(ps.len(), 1);
        let mandatory = &ps.profiles[0].mandatory;
        assert!(mandatory.contains(&0) && mandatory.contains(&1));
        assert!(
            !mandatory.contains(&2),
            "optional group must not be mandatory"
        );
    }

    #[test]
    fn per_profile_critical_keys_stay_sharp() {
        let mut ps = ProfileSet::new();
        // map-type sessions: group 0 always sees keys 1 then 2
        let map_s = session(&[(0, vec![msg(1, &[("A", "x")]), msg(2, &[("A", "x")])])]);
        // unrelated AM-type sessions touch other groups with key 9
        let am_s = session(&[
            (3, vec![msg(9, &[("A", "y")])]),
            (4, vec![msg(9, &[("A", "y")])]),
        ]);
        for _ in 0..3 {
            train(&mut ps, &map_s);
            train(&mut ps, &am_s);
        }
        let fp: BTreeSet<usize> = [0].into();
        let (_, p) = ps.best_match(&fp).unwrap();
        let sub = p.subroutines[&0]
            .get(&BTreeSet::from(["A".to_string()]))
            .expect("A-signature subroutine");
        // in the pooled (profile-free) world the AM instances would have
        // emptied this; per profile both keys stay critical
        assert_eq!(sub.critical.len(), 2, "{sub:?}");
    }

    #[test]
    fn empty_profileset_matches_nothing() {
        let ps = ProfileSet::new();
        assert!(ps.best_match(&BTreeSet::new()).is_none());
        assert!(ps.is_empty());
    }
}
