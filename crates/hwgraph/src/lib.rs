//! # hwgraph — the Hierarchical Workflow graph (IntelLog §4.1)
//!
//! Models the workflow of a distributed data analytics system from its Intel
//! Keys and Messages:
//!
//! * [`group`] — Algorithm 1: nomenclature-based entity grouping with the
//!   `LongestCommonPhrase` rules;
//! * [`subroutine`] — Algorithm 2 + `UpdateSubroutine` (Fig. 5): identifier
//!   routing into subroutine instances, signature-keyed BEFORE/parallel
//!   orders and critical Intel Keys;
//! * [`lifespan`] — per-session group lifespans and the PARENT / BEFORE /
//!   PARALLEL relations of Fig. 6;
//! * [`hierarchy`] — the Fig. 7 construction procedure;
//! * [`graph`] — the assembled [`HwGraph`], its Table 5 statistics, JSON
//!   serialisation and the Fig. 8-style text rendering.

#![forbid(unsafe_code)]

pub mod graph;
pub mod group;
pub mod hierarchy;
pub mod lifespan;
pub mod profile;
pub mod subroutine;

pub use graph::{GraphStats, GroupModel, HwGraph};
pub use group::{
    group_entities, group_entities_with, longest_common_phrase, longest_common_phrase_with,
    EntityGroup, Grouping, GroupingOptions,
};
pub use hierarchy::{Hierarchy, HierarchyNode};
pub use lifespan::{GroupRel, GroupRelations, Lifespan};
pub use profile::{ProfileSet, SessionProfile};
pub use subroutine::{split_instances, Signature, Subroutine, SubroutineInstance, SubroutineSet};
