//! HW-graph hierarchy construction (paper §4.1, Fig. 7).
//!
//! Starting from the pairwise group relations, the paper repeatedly picks a
//! group that has only `PARALLEL`, `PARENT` and `BEFORE` relations left —
//! i.e. it is nobody's child and nothing precedes it — attaches its children
//! and ordering edges, crosses out its relations, and repeats until all
//! groups are placed.
//!
//! The result is a forest: every group has at most one (immediate) parent,
//! sibling order is captured by `before` edges, unordered siblings run in
//! parallel.

use crate::lifespan::{GroupRel, GroupRelations};
use serde::{Deserialize, Serialize};

/// One node of the hierarchy (indices refer to group indices).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyNode {
    /// Immediate parent group, if any.
    pub parent: Option<usize>,
    /// Immediate children, in placement order.
    pub children: Vec<usize>,
    /// Groups (siblings) that this group strictly precedes.
    pub before: Vec<usize>,
    /// Depth from the root level (roots are 0).
    pub depth: usize,
}

/// The group hierarchy of a HW-graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    /// One node per group.
    pub nodes: Vec<HierarchyNode>,
    /// Root groups in placement order.
    pub roots: Vec<usize>,
}

impl Hierarchy {
    /// Build the hierarchy following the Fig. 7 procedure.
    ///
    /// The *immediate* parent of a group `g` is the parent `p` that is
    /// itself a child (transitively) of every other parent of `g` — with
    /// lifespan containment this is the parent with the largest number of
    /// ancestors among `g`'s parents.
    #[allow(clippy::needless_range_loop)]
    pub fn build(rel: &GroupRelations) -> Hierarchy {
        let n = rel.group_count();
        let mut nodes: Vec<HierarchyNode> = vec![HierarchyNode::default(); n];

        // Immediate parent: among all parents of g, pick the one that is a
        // child of all the others (the most deeply nested). Containment
        // makes parenthood transitive, so "has the most parents itself"
        // identifies the immediate one; ties broken by index for
        // determinism.
        for g in 0..n {
            let parents = rel.parents_of(g);
            if parents.is_empty() {
                continue;
            }
            let immediate = parents
                .iter()
                .copied()
                .max_by_key(|&p| (rel.parents_of(p).len(), usize::MAX - p))
                .expect("non-empty");
            nodes[g].parent = Some(immediate);
        }
        for g in 0..n {
            if let Some(p) = nodes[g].parent {
                nodes[p].children.push(g);
            }
        }

        // BEFORE edges are kept between groups sharing the same parent
        // (sibling ordering); cross-level edges are implied by the parents.
        for a in 0..n {
            for b in 0..n {
                if a != b
                    && rel.get(a, b) == Some(GroupRel::Before)
                    && nodes[a].parent == nodes[b].parent
                {
                    nodes[a].before.push(b);
                }
            }
        }

        // Fig. 7 iterative placement: repeatedly take groups with no
        // unplaced parent and no unplaced BEFORE-predecessor; this yields
        // the deterministic placement order and the depths.
        let mut placed = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        loop {
            let mut progressed = false;
            for g in 0..n {
                if placed[g] {
                    continue;
                }
                let parent_ok = nodes[g].parent.is_none_or(|p| placed[p]);
                let preds_ok = (0..n).all(|h| {
                    h == g
                        || placed[h]
                        || !(rel.get(h, g) == Some(GroupRel::Before)
                            && nodes[h].parent == nodes[g].parent)
                });
                if parent_ok && preds_ok {
                    placed[g] = true;
                    order.push(g);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Cycles in BEFORE cannot happen (strict precedence), but guard:
        // place any stragglers in index order.
        for g in 0..n {
            if !placed[g] {
                order.push(g);
            }
        }

        let mut roots = Vec::new();
        for &g in &order {
            match nodes[g].parent {
                None => {
                    nodes[g].depth = 0;
                    roots.push(g);
                }
                Some(p) => nodes[g].depth = nodes[p].depth + 1,
            }
        }
        Hierarchy { nodes, roots }
    }

    /// Iterate groups in depth-first order (children after their parent).
    pub fn depth_first(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<usize> = self.roots.iter().rev().copied().collect();
        while let Some(g) = stack.pop() {
            out.push(g);
            for &c in self.nodes[g].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifespan::{GroupRelations, Lifespan};
    use std::collections::HashMap;

    fn span(a: u64, b: u64) -> Lifespan {
        Lifespan { first: a, last: b }
    }

    fn relations(sessions: Vec<Vec<(usize, Lifespan)>>, n: usize) -> GroupRelations {
        let sessions: Vec<HashMap<usize, Lifespan>> = sessions
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        GroupRelations::compute(n, &sessions)
    }

    #[test]
    fn figure7_example() {
        // a contains b and d; c runs parallel to a; within a, b before d.
        let rel = relations(
            vec![vec![
                (0, span(0, 100)), // a
                (1, span(10, 40)), // b
                (2, span(5, 105)), // c (overlaps a both ways → parallel)
                (3, span(50, 90)), // d
            ]],
            4,
        );
        let h = Hierarchy::build(&rel);
        assert_eq!(h.nodes[1].parent, Some(0));
        assert_eq!(h.nodes[3].parent, Some(0));
        assert_eq!(h.nodes[2].parent, None);
        assert!(h.roots.contains(&0) && h.roots.contains(&2));
        assert!(h.nodes[1].before.contains(&3)); // b before d (siblings)
        assert_eq!(h.nodes[1].depth, 1);
        assert_eq!(h.nodes[0].depth, 0);
    }

    #[test]
    fn immediate_parent_is_deepest() {
        // a ⊃ b ⊃ c: c's immediate parent must be b, not a.
        let rel = relations(
            vec![vec![
                (0, span(0, 100)),
                (1, span(10, 90)),
                (2, span(20, 80)),
            ]],
            3,
        );
        let h = Hierarchy::build(&rel);
        assert_eq!(h.nodes[1].parent, Some(0));
        assert_eq!(h.nodes[2].parent, Some(1));
        assert_eq!(h.nodes[2].depth, 2);
        assert_eq!(h.depth_first(), [0, 1, 2]);
    }

    #[test]
    fn before_chain_of_roots() {
        let rel = relations(
            vec![vec![(0, span(0, 10)), (1, span(20, 30)), (2, span(40, 50))]],
            3,
        );
        let h = Hierarchy::build(&rel);
        assert!(h.nodes[0].before.contains(&1));
        assert!(h.nodes[1].before.contains(&2));
        assert_eq!(h.roots, [0, 1, 2]); // placement respects BEFORE order
    }

    #[test]
    fn cross_level_before_not_kept_as_sibling_edge() {
        // a ⊃ b; b before c (c is a root): the edge b→c crosses levels and
        // is not a sibling edge.
        let rel = relations(
            vec![vec![(0, span(0, 20)), (1, span(5, 10)), (2, span(30, 40))]],
            3,
        );
        let h = Hierarchy::build(&rel);
        assert_eq!(h.nodes[1].parent, Some(0));
        assert!(h.nodes[1].before.is_empty());
        // a itself precedes c as a sibling (both roots)
        assert!(h.nodes[0].before.contains(&2));
    }

    #[test]
    fn empty_and_single() {
        let rel = relations(vec![], 0);
        let h = Hierarchy::build(&rel);
        assert!(h.roots.is_empty());
        let rel = relations(vec![vec![(0, span(0, 5))]], 1);
        let h = Hierarchy::build(&rel);
        assert_eq!(h.roots, [0]);
    }

    #[test]
    fn inconsistent_sessions_yield_flat_parallel_forest() {
        let rel = relations(
            vec![
                vec![(0, span(0, 10)), (1, span(20, 30))],
                vec![(0, span(20, 30)), (1, span(0, 10))],
            ],
            2,
        );
        let h = Hierarchy::build(&rel);
        assert_eq!(h.nodes[0].parent, None);
        assert_eq!(h.nodes[1].parent, None);
        assert!(h.nodes[0].before.is_empty());
        assert_eq!(h.roots.len(), 2);
    }
}
