//! Lifespan analysis and entity-group relations (paper §4.1, Fig. 6).
//!
//! The lifespan of an entity group in a session is the interval between its
//! first and last log message. Two groups are related by:
//!
//! * `PARENT` — the child's lifespan lies within the parent's in **every**
//!   session where both appear;
//! * `BEFORE` — one group's lifespan ends before the other's begins in
//!   every such session;
//! * `PARALLEL` — anything else.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A lifespan `[first, last]` in session-local milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lifespan {
    /// Timestamp of the group's first message.
    pub first: u64,
    /// Timestamp of the group's last message.
    pub last: u64,
}

impl Lifespan {
    /// A degenerate lifespan at one instant.
    pub fn at(ts: u64) -> Lifespan {
        Lifespan {
            first: ts,
            last: ts,
        }
    }

    /// Extend to cover `ts`.
    pub fn extend(&mut self, ts: u64) {
        self.first = self.first.min(ts);
        self.last = self.last.max(ts);
    }

    /// `true` if `self` lies within `other` (not necessarily strictly).
    pub fn within(&self, other: &Lifespan) -> bool {
        other.first <= self.first && self.last <= other.last
    }

    /// `true` if `self` ends before `other` begins.
    pub fn before(&self, other: &Lifespan) -> bool {
        self.last < other.first
    }

    /// Duration in ms.
    pub fn duration(&self) -> u64 {
        self.last - self.first
    }
}

/// The pairwise relation between two entity groups (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupRel {
    /// `a` is the parent of `b` (b's lifespan within a's, every session).
    Parent,
    /// `a` finishes before `b` starts, every session.
    Before,
    /// Overlapping / inconsistent orders.
    Parallel,
}

/// Pairwise relations over `n` groups, computed from per-session lifespans.
///
/// (Intentionally not serialisable: tuple-keyed maps do not fit JSON; the
/// HW-graph serialises the derived [`crate::hierarchy::Hierarchy`] instead.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupRelations {
    n: usize,
    /// Relation for each ordered pair `(a, b)` with `a != b`; missing pairs
    /// never co-occurred.
    rel: HashMap<(usize, usize), GroupRel>,
}

impl GroupRelations {
    /// Compute relations from per-session lifespans: for each session, a map
    /// group-index → lifespan (absent groups do not constrain the pair).
    pub fn compute(n: usize, sessions: &[HashMap<usize, Lifespan>]) -> GroupRelations {
        let mut rel = HashMap::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let mut co_occurred = false;
                let mut always_parent = true; // b within a, strictly smaller
                let mut always_before = true; // a before b
                for s in sessions {
                    let (Some(la), Some(lb)) = (s.get(&a), s.get(&b)) else {
                        continue;
                    };
                    co_occurred = true;
                    let strictly_contains = lb.within(la) && !(la.within(lb));
                    if !strictly_contains {
                        always_parent = false;
                    }
                    if !la.before(lb) {
                        always_before = false;
                    }
                }
                if !co_occurred {
                    continue;
                }
                let r = if always_parent {
                    GroupRel::Parent
                } else if always_before {
                    GroupRel::Before
                } else {
                    GroupRel::Parallel
                };
                rel.insert((a, b), r);
            }
        }
        GroupRelations { n, rel }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.n
    }

    /// The relation of ordered pair `(a, b)`, if the groups co-occurred.
    pub fn get(&self, a: usize, b: usize) -> Option<GroupRel> {
        self.rel.get(&(a, b)).copied()
    }

    /// `true` if `a` is a parent of `b`.
    pub fn is_parent(&self, a: usize, b: usize) -> bool {
        self.get(a, b) == Some(GroupRel::Parent)
    }

    /// `true` if `a` is before `b`.
    pub fn is_before(&self, a: usize, b: usize) -> bool {
        self.get(a, b) == Some(GroupRel::Before)
    }

    /// All parents of `g`.
    pub fn parents_of(&self, g: usize) -> Vec<usize> {
        (0..self.n).filter(|&p| self.is_parent(p, g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: u64, b: u64) -> Lifespan {
        Lifespan { first: a, last: b }
    }

    fn sess(entries: &[(usize, Lifespan)]) -> HashMap<usize, Lifespan> {
        entries.iter().copied().collect()
    }

    #[test]
    fn lifespan_ops() {
        let mut l = Lifespan::at(5);
        l.extend(2);
        l.extend(9);
        assert_eq!(l, span(2, 9));
        assert!(span(3, 4).within(&l));
        assert!(l.before(&span(10, 12)));
        assert!(!l.before(&span(9, 12)));
        assert_eq!(l.duration(), 7);
    }

    #[test]
    fn containment_in_every_session_is_parent() {
        let sessions = vec![
            sess(&[(0, span(0, 100)), (1, span(10, 50))]),
            sess(&[(0, span(0, 80)), (1, span(20, 70))]),
        ];
        let r = GroupRelations::compute(2, &sessions);
        assert!(r.is_parent(0, 1));
        assert_eq!(r.get(1, 0), Some(GroupRel::Parallel)); // reverse is not parent/before
        assert_eq!(r.parents_of(1), [0]);
    }

    #[test]
    fn one_violation_demotes_to_parallel() {
        let sessions = vec![
            sess(&[(0, span(0, 100)), (1, span(10, 50))]),
            sess(&[(0, span(0, 40)), (1, span(10, 60))]), // overlap, not contained
        ];
        let r = GroupRelations::compute(2, &sessions);
        assert_eq!(r.get(0, 1), Some(GroupRel::Parallel));
    }

    #[test]
    fn strict_precedence_is_before() {
        let sessions = vec![
            sess(&[(0, span(0, 10)), (1, span(20, 30))]),
            sess(&[(0, span(5, 12)), (1, span(13, 30))]),
        ];
        let r = GroupRelations::compute(2, &sessions);
        assert!(r.is_before(0, 1));
        assert_eq!(r.get(1, 0), Some(GroupRel::Parallel));
    }

    #[test]
    fn identical_lifespans_are_parallel() {
        let sessions = vec![sess(&[(0, span(0, 10)), (1, span(0, 10))])];
        let r = GroupRelations::compute(2, &sessions);
        assert_eq!(r.get(0, 1), Some(GroupRel::Parallel));
        assert_eq!(r.get(1, 0), Some(GroupRel::Parallel));
    }

    #[test]
    fn non_cooccurring_pairs_have_no_relation() {
        let sessions = vec![sess(&[(0, span(0, 10))]), sess(&[(1, span(0, 10))])];
        let r = GroupRelations::compute(2, &sessions);
        assert_eq!(r.get(0, 1), None);
    }

    #[test]
    fn session_with_one_group_does_not_constrain() {
        let sessions = vec![
            sess(&[(0, span(0, 100)), (1, span(10, 50))]),
            sess(&[(0, span(0, 100))]), // group 1 absent: no constraint
        ];
        let r = GroupRelations::compute(2, &sessions);
        assert!(r.is_parent(0, 1));
    }
}
