//! The Hierarchical Workflow graph (HW-graph) and its builder.
//!
//! A HW-graph represents the workflow of a targeted system (paper §4.1):
//! entity groups (Algorithm 1) arranged hierarchically by lifespan analysis
//! (Fig. 6/7), each group carrying its learned subroutines (Algorithm 2).
//! Groups are flagged *critical* (paper §6.3) when they hold multiple Intel
//! Keys or a key that repeats within a single session.

use crate::group::{group_entities, Grouping};
use crate::hierarchy::Hierarchy;
use crate::lifespan::{GroupRelations, Lifespan};
use crate::profile::ProfileSet;
use crate::subroutine::SubroutineSet;
use extract::{IntelKey, IntelMessage};
use serde::{Deserialize, Serialize};
use spell::KeyId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One entity group of a HW-graph with its learned behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupModel {
    /// Group label (the common phrase).
    pub name: String,
    /// Member entity phrases.
    pub entities: BTreeSet<String>,
    /// Intel Keys whose entities belong to this group.
    pub keys: BTreeSet<KeyId>,
    /// Subroutines learned for this group.
    pub subroutines: SubroutineSet,
    /// Critical group flag (§6.3): multiple keys, or a key that repeats
    /// within one session.
    pub critical: bool,
    /// How many training sessions contained this group.
    pub sessions_seen: u64,
    /// `true` if the group appeared in *every* training session — its
    /// absence from a new session is an erroneous-instance anomaly (the
    /// Spark-19371 case study detects sessions missing the 'task' group).
    pub mandatory: bool,
}

/// Statistics of a trained HW-graph (paper Table 5).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Average number of log messages per session.
    pub avg_session_len: f64,
    /// Number of entity groups.
    pub groups_all: usize,
    /// Number of critical entity groups.
    pub groups_critical: usize,
    /// Longest subroutine skeleton.
    pub sub_len_max: usize,
    /// Average subroutine length over all groups.
    pub sub_len_avg_all: f64,
    /// Average subroutine length over critical groups.
    pub sub_len_avg_crit: f64,
}

/// The trained workflow model of one targeted system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HwGraph {
    /// Entity groups with subroutines.
    pub groups: Vec<GroupModel>,
    /// Group hierarchy (parents / children / sibling order).
    pub hierarchy: Hierarchy,
    /// Key → groups membership (a key may belong to several groups).
    pub key_groups: BTreeMap<KeyId, Vec<usize>>,
    /// Session profiles: per-session-type mandatory groups and subroutines
    /// (see [`crate::profile`]).
    pub profiles: ProfileSet,
    /// Training statistics (Table 5 inputs).
    pub stats: GraphStats,
}

impl HwGraph {
    /// Build (train) a HW-graph from Intel Keys and per-session Intel
    /// Message sequences (time-ordered within each session).
    pub fn build(keys: &[IntelKey], sessions: &[Vec<IntelMessage>]) -> HwGraph {
        let _span = obs::span!("hwgraph.build");
        // 1. Entity universe and Algorithm 1 grouping.
        let all_entities: BTreeSet<String> = keys
            .iter()
            .flat_map(|k| k.entity_phrases().into_iter().map(str::to_string))
            .collect();
        let grouping: Grouping = group_entities(all_entities);

        // 2. Key → groups via the reverse index.
        let mut key_groups: BTreeMap<KeyId, Vec<usize>> = BTreeMap::new();
        for k in keys {
            let mut gs: Vec<usize> = k
                .entity_phrases()
                .iter()
                .flat_map(|e| grouping.groups_of(e).iter().copied())
                .collect();
            gs.sort_unstable();
            gs.dedup();
            key_groups.insert(k.key_id, gs);
        }

        let n = grouping.len();
        let mut groups: Vec<GroupModel> = grouping
            .groups
            .iter()
            .map(|g| GroupModel {
                name: g.name.clone(),
                entities: g.entities.clone(),
                ..Default::default()
            })
            .collect();
        for (kid, gs) in &key_groups {
            for &g in gs {
                groups[g].keys.insert(*kid);
            }
        }

        // 3. Per-session lifespans and subroutine training; track per-key
        //    per-session repetition for the critical-group criterion.
        let mut session_lifespans: Vec<HashMap<usize, Lifespan>> =
            Vec::with_capacity(sessions.len());
        let mut key_repeats_in_session: BTreeSet<KeyId> = BTreeSet::new();
        let mut profiles = ProfileSet::new();
        for session in sessions {
            let mut spans: HashMap<usize, Lifespan> = HashMap::new();
            let mut per_group: std::collections::BTreeMap<usize, Vec<&IntelMessage>> =
                Default::default();
            let mut key_counts: HashMap<KeyId, u32> = HashMap::new();
            for m in session {
                *key_counts.entry(m.key_id).or_insert(0) += 1;
                let Some(gs) = key_groups.get(&m.key_id) else {
                    continue;
                };
                for &g in gs {
                    spans
                        .entry(g)
                        .and_modify(|l| l.extend(m.ts_ms))
                        .or_insert_with(|| Lifespan::at(m.ts_ms));
                    per_group.entry(g).or_default().push(m);
                }
            }
            for (k, c) in key_counts {
                if c > 1 {
                    key_repeats_in_session.insert(k);
                }
            }
            if !session.is_empty() {
                profiles.train_session(&per_group);
            }
            for (g, msgs) in per_group {
                groups[g].sessions_seen += 1;
                groups[g].subroutines.train_session(&msgs);
            }
            session_lifespans.push(spans);
        }

        // 4. Critical and mandatory flags (§6.3 / §6.4 case 3).
        for g in groups.iter_mut() {
            g.critical =
                g.keys.len() > 1 || g.keys.iter().any(|k| key_repeats_in_session.contains(k));
            g.mandatory = !sessions.is_empty() && g.sessions_seen == sessions.len() as u64;
        }

        // 5. Relations and hierarchy.
        let relations = GroupRelations::compute(n, &session_lifespans);
        let hierarchy = Hierarchy::build(&relations);

        // 6. Table 5 statistics.
        let total_msgs: usize = sessions.iter().map(Vec::len).sum();
        let sub_lens_all: Vec<usize> = groups
            .iter()
            .flat_map(|g| g.subroutines.subroutines().map(|s| s.keys.len()))
            .collect();
        let sub_lens_crit: Vec<usize> = groups
            .iter()
            .filter(|g| g.critical)
            .flat_map(|g| g.subroutines.subroutines().map(|s| s.keys.len()))
            .collect();
        let avg = |v: &[usize]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<usize>() as f64 / v.len() as f64
            }
        };
        let stats = GraphStats {
            avg_session_len: if sessions.is_empty() {
                0.0
            } else {
                total_msgs as f64 / sessions.len() as f64
            },
            groups_all: n,
            groups_critical: groups.iter().filter(|g| g.critical).count(),
            sub_len_max: sub_lens_all.iter().copied().max().unwrap_or(0),
            sub_len_avg_all: avg(&sub_lens_all),
            sub_len_avg_crit: avg(&sub_lens_crit),
        };

        obs::inc!("hwgraph.builds");
        obs::add!("hwgraph.groups", stats.groups_all as u64);
        obs::add!("hwgraph.groups_critical", stats.groups_critical as u64);
        obs::add!("hwgraph.subroutines", sub_lens_all.len() as u64);
        obs::add!("hwgraph.sessions_trained", sessions.len() as u64);
        obs::event!(
            "hwgraph.built",
            "groups" = stats.groups_all,
            "critical" = stats.groups_critical,
            "sessions" = sessions.len(),
        );
        HwGraph {
            groups,
            hierarchy,
            key_groups,
            profiles,
            stats,
        }
    }

    /// The groups a key belongs to.
    pub fn groups_of_key(&self, k: KeyId) -> &[usize] {
        self.key_groups.get(&k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Group index by name.
    pub fn group_by_name(&self, name: &str) -> Option<usize> {
        self.groups.iter().position(|g| g.name == name)
    }

    /// Serialise to pretty JSON (paper §5: HW-graphs are output as JSON).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("HwGraph is always serialisable")
    }

    /// Parse back from JSON.
    pub fn from_json(s: &str) -> Result<HwGraph, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Render the HW-graph as Graphviz DOT (Fig. 8(a) as a drawable graph):
    /// clusters are parent/child containment, solid arrows are sibling
    /// BEFORE edges, critical groups are drawn bold.
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph hwgraph {\n  rankdir=TB;\n  node [shape=box];\n");
        for (g, gm) in self.groups.iter().enumerate() {
            let style = if gm.critical { ",style=bold" } else { "" };
            out.push_str(&format!(
                "  g{g} [label=\"{}\\n({} entities, {} keys)\"{style}];\n",
                gm.name.replace('"', ""),
                gm.entities.len(),
                gm.keys.len()
            ));
        }
        for (g, node) in self.hierarchy.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                out.push_str(&format!(
                    "  g{p} -> g{g} [style=dashed,arrowhead=odiamond];\n"
                ));
            }
            for &b in &node.before {
                out.push_str(&format!("  g{g} -> g{b};\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Render the hierarchy as an indented text tree (Fig. 8(a) analogue).
    /// Critical groups are marked `*`; `keys` supplies operation labels for
    /// each group's subroutines (Fig. 8(b) analogue).
    pub fn render_text(&self, keys: &[IntelKey]) -> String {
        let mut out = String::new();
        let key_label = |kid: KeyId| -> String {
            keys.iter()
                .find(|k| k.key_id == kid)
                .map(|k| k.label())
                .unwrap_or_else(|| kid.to_string())
        };
        let mut stack: Vec<usize> = self.hierarchy.roots.iter().rev().copied().collect();
        while let Some(g) = stack.pop() {
            let node = &self.hierarchy.nodes[g];
            let gm = &self.groups[g];
            let indent = "  ".repeat(node.depth);
            let mark = if gm.critical { "*" } else { "" };
            let before: Vec<&str> = node
                .before
                .iter()
                .map(|&b| self.groups[b].name.as_str())
                .collect();
            out.push_str(&format!(
                "{indent}[{}{mark}] entities={{{}}}{}\n",
                gm.name,
                gm.entities.iter().cloned().collect::<Vec<_>>().join(", "),
                if before.is_empty() {
                    String::new()
                } else {
                    format!(" before: {}", before.join(", "))
                },
            ));
            for (si, sub) in gm.subroutines.subroutines().enumerate() {
                let sig = if sub.signature.is_empty() {
                    "no identifier".to_string()
                } else {
                    sub.signature.iter().cloned().collect::<Vec<_>>().join(", ")
                };
                out.push_str(&format!("{indent}  s{}: [{sig}]\n", si + 1));
                for &k in &sub.keys {
                    let crit = if sub.critical.contains(&k) { "!" } else { " " };
                    out.push_str(&format!("{indent}    {crit} {}\n", key_label(k)));
                }
            }
            for &c in self.hierarchy.nodes[g].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extract::IntelExtractor;
    use spell::SpellParser;

    /// A miniature two-session Spark-like corpus exercising the whole build.
    fn mini_corpus() -> (Vec<IntelKey>, Vec<Vec<IntelMessage>>) {
        let scripts: Vec<Vec<&str>> = vec![
            vec![
                "Changing view acls to root",
                "Registering block manager endpoint on host1",
                "block manager registered with 2 GB memory",
                "Starting task 1 in stage 0",
                "Starting task 2 in stage 0",
                "Finished task 1 in stage 0 and sent 2264 bytes to driver",
                "Finished task 2 in stage 0 and sent 998 bytes to driver",
                "Stopped block manager cleanly",
                "Shutdown hook called",
            ],
            vec![
                "Changing view acls to root",
                "Registering block manager endpoint on host2",
                "block manager registered with 4 GB memory",
                "Starting task 3 in stage 0",
                "Finished task 3 in stage 0 and sent 104 bytes to driver",
                "Stopped block manager cleanly",
                "Shutdown hook called",
            ],
        ];
        let mut parser = SpellParser::default();
        let mut sessions = Vec::new();
        let ex = IntelExtractor::new();
        // First pass: learn keys.
        let outs: Vec<Vec<_>> = scripts
            .iter()
            .map(|lines| lines.iter().map(|l| parser.parse_message(l)).collect())
            .collect();
        let keys: Vec<IntelKey> = parser.keys().iter().map(|k| ex.build(k)).collect();
        for (si, session_outs) in outs.iter().enumerate() {
            let msgs: Vec<IntelMessage> = session_outs
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    IntelMessage::instantiate(
                        &keys[o.key_id.0 as usize],
                        &o.tokens,
                        format!("container_{si}"),
                        i as u64 * 10,
                    )
                })
                .collect();
            sessions.push(msgs);
        }
        (keys, sessions)
    }

    #[test]
    fn build_produces_groups_and_hierarchy() {
        let (keys, sessions) = mini_corpus();
        let g = HwGraph::build(&keys, &sessions);
        assert!(!g.groups.is_empty());
        // the block-manager family lands in one group
        let bm = g
            .groups
            .iter()
            .find(|gr| gr.entities.contains("block manager"));
        assert!(
            bm.is_some(),
            "{:?}",
            g.groups.iter().map(|x| &x.name).collect::<Vec<_>>()
        );
        // task group exists and is critical (repeats within a session)
        let tg = g.group_by_name("task").expect("task group");
        assert!(g.groups[tg].critical);
        assert_eq!(g.hierarchy.nodes.len(), g.groups.len());
        assert!(!g.hierarchy.roots.is_empty());
    }

    #[test]
    fn stats_reflect_corpus_shape() {
        let (keys, sessions) = mini_corpus();
        let g = HwGraph::build(&keys, &sessions);
        assert!((g.stats.avg_session_len - 8.0).abs() < 0.01);
        assert_eq!(g.stats.groups_all, g.groups.len());
        assert!(g.stats.groups_critical <= g.stats.groups_all);
        assert!(g.stats.sub_len_max >= 1);
        assert!(g.stats.sub_len_avg_all > 0.0);
    }

    #[test]
    fn task_subroutine_orders_start_before_finish() {
        let (keys, sessions) = mini_corpus();
        let g = HwGraph::build(&keys, &sessions);
        let tg = &g.groups[g.group_by_name("task").unwrap()];
        // find the TASK-signature subroutine
        let sub = tg
            .subroutines
            .subroutines()
            .find(|s| s.signature.contains("TASK"))
            .expect("task subroutine");
        assert_eq!(sub.keys.len(), 2, "{sub:?}");
        assert!(sub.is_before(sub.keys[0], sub.keys[1]));
        assert_eq!(sub.critical.len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let (keys, sessions) = mini_corpus();
        let g = HwGraph::build(&keys, &sessions);
        let j = g.to_json();
        let back = HwGraph::from_json(&j).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn render_text_contains_groups_and_marks() {
        let (keys, sessions) = mini_corpus();
        let g = HwGraph::build(&keys, &sessions);
        let txt = g.render_text(&keys);
        assert!(txt.contains("[task*]"), "{txt}");
        assert!(txt.contains("s1:"), "{txt}");
    }

    #[test]
    fn dot_rendering_wellformed() {
        let (keys, sessions) = mini_corpus();
        let g = HwGraph::build(&keys, &sessions);
        let dot = g.render_dot();
        assert!(dot.starts_with("digraph hwgraph {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("style=bold"), "critical groups drawn bold");
        // one node line per group
        assert_eq!(dot.matches("[label=").count(), g.groups.len());
    }

    #[test]
    fn empty_corpus() {
        let g = HwGraph::build(&[], &[]);
        assert!(g.groups.is_empty());
        assert_eq!(g.stats.avg_session_len, 0.0);
    }
}
