//! Shard workers: the threads that own the live sessions.
//!
//! Each incoming log line is routed — by the gateway's consistent-hash
//! [`Ring`](crate::ring::Ring) over the tenant-qualified session key — to
//! exactly one shard, so a session's whole stream is processed by a single
//! thread and the per-session [`StreamState`] needs no locking. A session
//! pins its tenant's model version at open (a [`ModelLease`]), so hot
//! reloads never change the detector under a live session.
//!
//! Sessions are *movable*: [`ShardMsg::Rebalance`] makes the worker
//! snapshot every session the new ring assigns elsewhere and hand the
//! owned [`SessionState`]s back through the ack channel; the gateway
//! restores them into their new owners with [`ShardMsg::Restore`]. Because
//! control messages join the back of the FIFO queue, every line enqueued
//! before the rebalance is processed before the snapshot — a moved session
//! resumes exactly where it left off, which is what makes draining a shard
//! under live load verdict-lossless.

use crate::metrics::ShardMetrics;
use crate::queue::ShardQueue;
use crate::registry::{ModelLease, TenantEntry};
use crate::ring::Ring;
use crate::sink::AnomalySink;
use anomaly::StreamState;
use spell::LogLine;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use sync::atomic::Ordering;
use sync::thread::JoinHandle;
use sync::{mpsc, Arc};

/// The full state of one in-flight session — everything needed to resume
/// it on another shard.
pub struct SessionState {
    /// Ring routing key (`tenant \x1f session`).
    pub key: String,
    /// The tenant this session belongs to.
    pub tenant: Arc<TenantEntry>,
    /// The pinned model version (kept across moves — a session opened on
    /// v1 finishes on v1 even if it is restored after a reload).
    pub lease: ModelLease,
    /// The detection state.
    pub stream: StreamState,
    /// Last activity, for idle eviction.
    pub last_seen: Instant,
}

/// Messages a shard worker consumes.
pub enum ShardMsg {
    /// One routed log line.
    Line {
        /// The session's tenant.
        tenant: Arc<TenantEntry>,
        /// Ring routing key (`tenant \x1f session`).
        key: String,
        /// Session (container) id.
        session: String,
        /// The structured line.
        line: LogLine,
        /// When the gateway enqueued it (feed-latency measurement).
        enqueued: Instant,
    },
    /// Explicit end of a session: finish it now.
    End {
        /// Ring routing key.
        key: String,
    },
    /// Finish live sessions (all, or one tenant's) and ack how many were
    /// closed. Because control messages join the back of the queue, every
    /// line enqueued before the drain is processed first.
    Drain {
        /// Restrict the drain to one tenant, or `None` for all.
        tenant: Option<String>,
        /// Ack channel; receives the number of sessions finished.
        ack: mpsc::Sender<usize>,
    },
    /// Snapshot every session the new ring assigns to another shard and
    /// send the owned states back. The worker keeps running with the
    /// sessions it still owns.
    Rebalance {
        /// The ring that will become current once every shard has acked.
        ring: Arc<Ring>,
        /// Receives the snapshot of moved-away sessions.
        ack: mpsc::Sender<Vec<SessionState>>,
    },
    /// Adopt a session snapshotted off another shard.
    Restore {
        /// The moved session (boxed: this variant is rare and large).
        state: Box<SessionState>,
    },
    /// Finish everything and exit the worker thread.
    Shutdown,
}

/// One shard: its queue, its metrics, and its worker thread.
pub struct ShardHandle {
    /// This shard's index (its identity in the ring).
    pub index: usize,
    /// Producer side (shared with the gateway).
    pub queue: Arc<ShardQueue<ShardMsg>>,
    /// Counters (shared with `STATS`).
    pub metrics: Arc<ShardMetrics>,
    join: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// Spawn a shard worker. Fails only if the OS refuses the thread; the
    /// caller decides whether that is fatal.
    pub fn spawn(
        index: usize,
        queue: Arc<ShardQueue<ShardMsg>>,
        metrics: Arc<ShardMetrics>,
        sink: Arc<AnomalySink>,
        idle_timeout: Duration,
    ) -> std::io::Result<ShardHandle> {
        let q = Arc::clone(&queue);
        let m = Arc::clone(&metrics);
        let join = sync::thread::Builder::new()
            .name(format!("intellog-shard-{index}"))
            .spawn(move || run_shard(index, &q, &m, &sink, idle_timeout))?;
        Ok(ShardHandle {
            index,
            queue,
            metrics,
            join: Some(join),
        })
    }

    /// Join the worker (after a `Shutdown` message has been queued).
    pub fn join(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn run_shard(
    index: usize,
    queue: &ShardQueue<ShardMsg>,
    metrics: &ShardMetrics,
    sink: &AnomalySink,
    idle_timeout: Duration,
) {
    // How often we wake up idle and how often, at most, we scan for
    // evictions while busy.
    let tick = Duration::from_millis(100)
        .min(idle_timeout / 2)
        .max(Duration::from_millis(10));
    let mut sessions: HashMap<String, SessionState> = HashMap::new();
    let mut last_scan = Instant::now();
    // The whole queue is swapped into this batch under one lock per drain
    // (instead of one lock round-trip per line), then processed lock-free.
    let mut batch: std::collections::VecDeque<ShardMsg> = Default::default();
    loop {
        queue.drain_timeout(tick, &mut batch);
        for msg in batch.drain(..) {
            match msg {
                ShardMsg::Line {
                    tenant,
                    key,
                    session,
                    line,
                    enqueued,
                } => {
                    let live = sessions.entry(key).or_insert_with_key(|k| {
                        metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                        metrics.sessions_live.fetch_add(1, Ordering::Relaxed);
                        tenant
                            .metrics
                            .sessions_opened
                            .fetch_add(1, Ordering::Relaxed);
                        SessionState {
                            key: k.clone(),
                            lease: tenant.open_session(),
                            tenant,
                            stream: StreamState::begin(session),
                            last_seen: Instant::now(),
                        }
                    });
                    live.last_seen = Instant::now();
                    if live.stream.feed(live.lease.detector(), &line).is_some() {
                        metrics.online_anomalies.fetch_add(1, Ordering::Relaxed);
                        live.tenant
                            .metrics
                            .online_anomalies
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    metrics.ingested.fetch_add(1, Ordering::Relaxed);
                    live.tenant.metrics.lines.fetch_add(1, Ordering::Relaxed);
                    metrics
                        .feed_latency
                        .record_us(enqueued.elapsed().as_micros() as u64);
                }
                ShardMsg::End { key } => {
                    if let Some(live) = sessions.remove(&key) {
                        finish_session(live, metrics, sink, false);
                    }
                }
                ShardMsg::Drain { tenant, ack } => {
                    let n = match tenant {
                        None => finish_all(&mut sessions, metrics, sink),
                        Some(t) => {
                            let keys: Vec<String> = sessions
                                .iter()
                                .filter(|(_, s)| s.tenant.name == t)
                                .map(|(k, _)| k.clone())
                                .collect();
                            let n = keys.len();
                            for k in keys {
                                if let Some(live) = sessions.remove(&k) {
                                    finish_session(live, metrics, sink, false);
                                }
                            }
                            n
                        }
                    };
                    let _ = ack.send(n);
                }
                ShardMsg::Rebalance { ring, ack } => {
                    let moved_keys: Vec<String> = sessions
                        .keys()
                        .filter(|k| ring.owner(k) != index)
                        .cloned()
                        .collect();
                    let mut moved = Vec::with_capacity(moved_keys.len());
                    for k in moved_keys {
                        if let Some(s) = sessions.remove(&k) {
                            metrics.sessions_live.fetch_sub(1, Ordering::Relaxed);
                            moved.push(s);
                        }
                    }
                    obs::add!("gateway.rebalance.sessions_moved", moved.len() as u64);
                    let _ = ack.send(moved);
                }
                ShardMsg::Restore { state } => {
                    metrics.sessions_live.fetch_add(1, Ordering::Relaxed);
                    match sessions.entry(state.key.clone()) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(*state);
                        }
                        std::collections::hash_map::Entry::Occupied(_) => {
                            // Cannot happen under the gateway's parking
                            // protocol (no line for a moved key is routed
                            // until the restore lands), but if it ever
                            // does, close the restored state rather than
                            // silently dropping its verdicts.
                            obs::inc!("gateway.rebalance.restore_conflicts");
                            metrics.sessions_live.fetch_sub(1, Ordering::Relaxed);
                            finish_session(*state, metrics, sink, false);
                        }
                    }
                }
                ShardMsg::Shutdown => {
                    // Everything enqueued before the shutdown has already
                    // been processed (queue order); later messages are shed,
                    // exactly as when the per-message loop returned here.
                    finish_all(&mut sessions, metrics, sink);
                    return;
                }
            }
        }
        if last_scan.elapsed() >= tick {
            last_scan = Instant::now();
            evict_idle(&mut sessions, metrics, sink, idle_timeout);
        }
    }
}

/// Close one session: final structural checks against its pinned model
/// version, report to the sink, counters updated. Dropping the lease here
/// is what lets an old model version drain after a hot reload.
fn finish_session(live: SessionState, metrics: &ShardMetrics, sink: &AnomalySink, evicted: bool) {
    let counter = if evicted {
        &metrics.sessions_evicted
    } else {
        &metrics.sessions_closed
    };
    counter.fetch_add(1, Ordering::Relaxed);
    metrics.sessions_live.fetch_sub(1, Ordering::Relaxed);
    let SessionState {
        tenant,
        lease,
        stream,
        ..
    } = live;
    let report = stream.finish(lease.detector());
    tenant
        .metrics
        .sessions_closed
        .fetch_add(1, Ordering::Relaxed);
    if report.is_problematic() {
        tenant
            .metrics
            .reports_problematic
            .fetch_add(1, Ordering::Relaxed);
    }
    sink.push(&tenant.name, report);
    drop(lease);
}

fn finish_all(
    sessions: &mut HashMap<String, SessionState>,
    metrics: &ShardMetrics,
    sink: &AnomalySink,
) -> usize {
    let n = sessions.len();
    for (_, live) in sessions.drain() {
        finish_session(live, metrics, sink, false);
    }
    n
}

fn evict_idle(
    sessions: &mut HashMap<String, SessionState>,
    metrics: &ShardMetrics,
    sink: &AnomalySink,
    idle_timeout: Duration,
) {
    let expired: Vec<String> = sessions
        .iter()
        .filter(|(_, live)| live.last_seen.elapsed() >= idle_timeout)
        .map(|(id, _)| id.clone())
        .collect();
    for id in expired {
        if let Some(live) = sessions.remove(&id) {
            finish_session(live, metrics, sink, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Backpressure;
    use crate::registry::TenantRegistry;
    use crate::ring::session_key;
    use anomaly::{Detector, Trainer};
    use spell::{Level, Session};

    fn line(ts: u64, msg: &str) -> LogLine {
        LogLine {
            ts_ms: ts,
            level: Level::Info,
            source: "X".into(),
            message: msg.into(),
        }
    }

    fn trained() -> Detector {
        let mk = |id: &str, k: u32| {
            Session::new(
                id,
                vec![
                    line(0, "Registering block manager endpoint on host1"),
                    line(10, &format!("Starting task {k} in stage 0")),
                    line(
                        20,
                        &format!("Finished task {k} in stage 0 and sent 9 bytes to driver"),
                    ),
                    line(30, "Shutdown hook called"),
                ],
            )
        };
        Trainer::default().train(&[mk("c0", 1), mk("c1", 2), mk("c2", 3)])
    }

    fn harness() -> (
        Arc<TenantEntry>,
        Arc<ShardQueue<ShardMsg>>,
        Arc<ShardMetrics>,
        Arc<AnomalySink>,
    ) {
        let reg = TenantRegistry::new();
        let tenant = reg.register("t0", Arc::new(trained()));
        (
            tenant,
            Arc::new(ShardQueue::new(64, Backpressure::Block)),
            Arc::new(ShardMetrics::default()),
            Arc::new(AnomalySink::new(16, None).unwrap()),
        )
    }

    fn push_line(
        queue: &ShardQueue<ShardMsg>,
        tenant: &Arc<TenantEntry>,
        session: &str,
        l: LogLine,
    ) {
        queue.push(ShardMsg::Line {
            tenant: Arc::clone(tenant),
            key: session_key(&tenant.name, session),
            session: session.into(),
            line: l,
            enqueued: Instant::now(),
        });
    }

    #[test]
    fn end_to_end_shard_worker_matches_batch_detection() {
        let (tenant, queue, metrics, sink) = harness();
        let det = tenant.current().detector.clone();
        let shard = ShardHandle::spawn(
            0,
            Arc::clone(&queue),
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Duration::from_secs(60),
        )
        .unwrap();
        let session = Session::new(
            "c9",
            vec![
                line(0, "Registering block manager endpoint on host1"),
                line(5, "spill 1 written to /tmp/x.out"),
                line(10, "Starting task 9 in stage 0"),
                line(30, "Shutdown hook called"),
            ],
        );
        for l in &session.lines {
            push_line(&queue, &tenant, "c9", l.clone());
        }
        queue.push_control(ShardMsg::End {
            key: session_key("t0", "c9"),
        });
        queue.push_control(ShardMsg::Shutdown);
        shard.join();
        let reports = sink.recent_reports(10, None);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0], det.detect_session(&session));
        assert_eq!(metrics.ingested.load(Ordering::Relaxed), 4);
        assert_eq!(metrics.sessions_closed.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.sessions_live.load(Ordering::Relaxed), 0);
        assert!(metrics.feed_latency.count() == 4);
        // tenant counters saw the same traffic
        assert_eq!(tenant.metrics.lines.load(Ordering::Relaxed), 4);
        assert_eq!(tenant.metrics.sessions_closed.load(Ordering::Relaxed), 1);
        // the session's lease was released on finish
        assert_eq!(tenant.current().live(), 0);
    }

    #[test]
    fn idle_sessions_are_evicted_with_final_report() {
        let (tenant, queue, metrics, sink) = harness();
        let shard = ShardHandle::spawn(
            0,
            Arc::clone(&queue),
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Duration::from_millis(50),
        )
        .unwrap();
        push_line(
            &queue,
            &tenant,
            "idle1",
            line(0, "Starting task 9 in stage 0"),
        );
        // wait well past the idle timeout + scan tick
        let deadline = Instant::now() + Duration::from_secs(5);
        while sink.completed() == 0 && Instant::now() < deadline {
            sync::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(sink.completed(), 1, "idle session must be evicted");
        assert_eq!(metrics.sessions_evicted.load(Ordering::Relaxed), 1);
        let report = &sink.recent_reports(1, None)[0];
        assert_eq!(report.session, "idle1");
        // truncated session → structural anomalies in the final report
        assert!(report.is_problematic());
        queue.push_control(ShardMsg::Shutdown);
        shard.join();
    }

    /// Moving a session to another shard mid-stream (Rebalance snapshot →
    /// Restore) must not change its final report.
    #[test]
    fn rebalance_snapshot_restore_is_verdict_lossless() {
        let (tenant, q0, m0, sink) = harness();
        let det = tenant.current().detector.clone();
        let shard0 = ShardHandle::spawn(
            0,
            Arc::clone(&q0),
            Arc::clone(&m0),
            Arc::clone(&sink),
            Duration::from_secs(60),
        )
        .unwrap();
        let q1 = Arc::new(ShardQueue::new(64, Backpressure::Block));
        let m1 = Arc::new(ShardMetrics::default());
        let shard1 = ShardHandle::spawn(
            1,
            Arc::clone(&q1),
            Arc::clone(&m1),
            Arc::clone(&sink),
            Duration::from_secs(60),
        )
        .unwrap();
        let session = Session::new(
            "c9",
            vec![
                line(0, "Registering block manager endpoint on host1"),
                line(5, "spill 1 written to /tmp/x.out"),
                line(10, "Starting task 9 in stage 0"),
                line(30, "Shutdown hook called"),
            ],
        );
        // first half on shard 0
        for l in &session.lines[..2] {
            push_line(&q0, &tenant, "c9", l.clone());
        }
        // rebalance against a ring where shard 0 no longer exists: the
        // session must be snapshotted out
        let ring = Arc::new(Ring::new(&[1], 8));
        let (tx, rx) = mpsc::channel();
        q0.push_control(ShardMsg::Rebalance { ring, ack: tx });
        let moved = rx.recv().unwrap();
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].stream.lines_seen(), 2, "pre-move lines consumed");
        for s in moved {
            q1.push_control(ShardMsg::Restore { state: Box::new(s) });
        }
        // second half on shard 1
        for l in &session.lines[2..] {
            push_line(&q1, &tenant, "c9", l.clone());
        }
        q1.push_control(ShardMsg::End {
            key: session_key("t0", "c9"),
        });
        q0.push_control(ShardMsg::Shutdown);
        q1.push_control(ShardMsg::Shutdown);
        shard0.join();
        shard1.join();
        let reports = sink.recent_reports(10, None);
        assert_eq!(reports.len(), 1, "exactly one report despite the move");
        assert_eq!(reports[0], det.detect_session(&session));
        assert_eq!(m1.sessions_closed.load(Ordering::Relaxed), 1);
        assert_eq!(tenant.current().live(), 0, "lease released after move");
    }

    /// A tenant-scoped drain must leave other tenants' sessions running.
    #[test]
    fn tenant_scoped_drain_is_isolated() {
        let reg = TenantRegistry::new();
        let t0 = reg.register("t0", Arc::new(trained()));
        let t1 = reg.register("t1", Arc::new(trained()));
        let queue = Arc::new(ShardQueue::new(64, Backpressure::Block));
        let metrics = Arc::new(ShardMetrics::default());
        let sink = Arc::new(AnomalySink::new(16, None).unwrap());
        let shard = ShardHandle::spawn(
            0,
            Arc::clone(&queue),
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Duration::from_secs(60),
        )
        .unwrap();
        push_line(&queue, &t0, "s0", line(0, "Starting task 1 in stage 0"));
        push_line(&queue, &t1, "s1", line(0, "Starting task 2 in stage 0"));
        let (tx, rx) = mpsc::channel();
        queue.push_control(ShardMsg::Drain {
            tenant: Some("t0".into()),
            ack: tx,
        });
        assert_eq!(rx.recv().unwrap(), 1, "only t0's session drains");
        assert_eq!(sink.recent_reports(10, Some("t1")).len(), 0);
        assert_eq!(sink.recent_reports(10, Some("t0")).len(), 1);
        queue.push_control(ShardMsg::Shutdown);
        shard.join();
        assert_eq!(sink.recent_reports(10, Some("t1")).len(), 1);
    }
}
