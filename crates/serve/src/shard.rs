//! Shard workers: the threads that own the live sessions.
//!
//! Each incoming log line is routed by a hash of its session id to exactly
//! one shard, so a session's whole stream is processed by a single thread
//! and the per-session [`StreamDetector`] needs no locking. The shard owns
//! its sessions' detectors over a shared immutable [`Detector`] model,
//! closes sessions on explicit `END`, evicts them after an idle timeout,
//! and emits every finished session's [`SessionReport`] into the
//! [`AnomalySink`].

use crate::metrics::ShardMetrics;
use crate::queue::ShardQueue;
use crate::sink::AnomalySink;
use anomaly::{Detector, StreamDetector};
use spell::LogLine;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use sync::atomic::Ordering;
use sync::thread::JoinHandle;
use sync::{mpsc, Arc};

/// Messages a shard worker consumes.
pub enum ShardMsg {
    /// One routed log line.
    Line {
        /// Session (container) id.
        session: String,
        /// The structured line.
        line: LogLine,
        /// When the acceptor enqueued it (feed-latency measurement).
        enqueued: Instant,
    },
    /// Explicit end of a session: finish it now.
    End {
        /// Session id.
        session: String,
    },
    /// Finish every live session and ack how many were closed. Because
    /// control messages join the back of the queue, every line enqueued
    /// before the drain is processed first.
    Drain {
        /// Ack channel; receives the number of sessions finished.
        ack: mpsc::Sender<usize>,
    },
    /// Drain and exit the worker thread.
    Shutdown,
}

/// FNV-1a hash of a session id — the routing function. Deterministic
/// across runs so a session always lands on the same shard.
pub fn shard_of(session: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in session.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// One shard: its queue, its metrics, and its worker thread.
pub struct ShardHandle {
    /// Producer side (shared with the connection handlers).
    pub queue: Arc<ShardQueue<ShardMsg>>,
    /// Counters (shared with `STATS`).
    pub metrics: Arc<ShardMetrics>,
    join: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// Spawn a shard worker over a shared model. Fails only if the OS
    /// refuses the thread; the caller decides whether that is fatal.
    pub fn spawn(
        index: usize,
        detector: Arc<Detector>,
        queue: Arc<ShardQueue<ShardMsg>>,
        metrics: Arc<ShardMetrics>,
        sink: Arc<AnomalySink>,
        idle_timeout: Duration,
    ) -> std::io::Result<ShardHandle> {
        let q = Arc::clone(&queue);
        let m = Arc::clone(&metrics);
        let join = sync::thread::Builder::new()
            .name(format!("intellog-shard-{index}"))
            .spawn(move || run_shard(&detector, &q, &m, &sink, idle_timeout))?;
        Ok(ShardHandle {
            queue,
            metrics,
            join: Some(join),
        })
    }

    /// Join the worker (after a `Shutdown` message has been queued).
    pub fn join(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

struct LiveSession<'a> {
    stream: StreamDetector<'a>,
    last_seen: Instant,
}

fn run_shard(
    detector: &Detector,
    queue: &ShardQueue<ShardMsg>,
    metrics: &ShardMetrics,
    sink: &AnomalySink,
    idle_timeout: Duration,
) {
    // How often we wake up idle and how often, at most, we scan for
    // evictions while busy.
    let tick = Duration::from_millis(100)
        .min(idle_timeout / 2)
        .max(Duration::from_millis(10));
    let mut sessions: HashMap<String, LiveSession<'_>> = HashMap::new();
    let mut last_scan = Instant::now();
    // The whole queue is swapped into this batch under one lock per drain
    // (instead of one lock round-trip per line), then processed lock-free.
    let mut batch: std::collections::VecDeque<ShardMsg> = Default::default();
    loop {
        queue.drain_timeout(tick, &mut batch);
        for msg in batch.drain(..) {
            match msg {
                ShardMsg::Line {
                    session,
                    line,
                    enqueued,
                } => {
                    let live = sessions.entry(session).or_insert_with_key(|id| {
                        metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                        metrics.sessions_live.fetch_add(1, Ordering::Relaxed);
                        LiveSession {
                            stream: StreamDetector::begin(detector, id.clone()),
                            last_seen: Instant::now(),
                        }
                    });
                    live.last_seen = Instant::now();
                    if live.stream.feed(&line).is_some() {
                        metrics.online_anomalies.fetch_add(1, Ordering::Relaxed);
                    }
                    metrics.ingested.fetch_add(1, Ordering::Relaxed);
                    metrics
                        .feed_latency
                        .record_us(enqueued.elapsed().as_micros() as u64);
                }
                ShardMsg::End { session } => {
                    if let Some(live) = sessions.remove(&session) {
                        metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                        metrics.sessions_live.fetch_sub(1, Ordering::Relaxed);
                        sink.push(live.stream.finish());
                    }
                }
                ShardMsg::Drain { ack } => {
                    let n = finish_all(&mut sessions, metrics, sink, false);
                    let _ = ack.send(n);
                }
                ShardMsg::Shutdown => {
                    // Everything enqueued before the shutdown has already
                    // been processed (queue order); later messages are shed,
                    // exactly as when the per-message loop returned here.
                    finish_all(&mut sessions, metrics, sink, false);
                    return;
                }
            }
        }
        if last_scan.elapsed() >= tick {
            last_scan = Instant::now();
            evict_idle(&mut sessions, metrics, sink, idle_timeout);
        }
    }
}

fn finish_all(
    sessions: &mut HashMap<String, LiveSession<'_>>,
    metrics: &ShardMetrics,
    sink: &AnomalySink,
    evicted: bool,
) -> usize {
    let n = sessions.len();
    for (_, live) in sessions.drain() {
        let counter = if evicted {
            &metrics.sessions_evicted
        } else {
            &metrics.sessions_closed
        };
        counter.fetch_add(1, Ordering::Relaxed);
        metrics.sessions_live.fetch_sub(1, Ordering::Relaxed);
        sink.push(live.stream.finish());
    }
    n
}

fn evict_idle(
    sessions: &mut HashMap<String, LiveSession<'_>>,
    metrics: &ShardMetrics,
    sink: &AnomalySink,
    idle_timeout: Duration,
) {
    let expired: Vec<String> = sessions
        .iter()
        .filter(|(_, live)| live.last_seen.elapsed() >= idle_timeout)
        .map(|(id, _)| id.clone())
        .collect();
    for id in expired {
        if let Some(live) = sessions.remove(&id) {
            debug_assert_eq!(live.stream.session_id(), id);
            metrics.sessions_evicted.fetch_add(1, Ordering::Relaxed);
            metrics.sessions_live.fetch_sub(1, Ordering::Relaxed);
            sink.push(live.stream.finish());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Backpressure;
    use anomaly::Trainer;
    use spell::{Level, Session};

    fn line(ts: u64, msg: &str) -> LogLine {
        LogLine {
            ts_ms: ts,
            level: Level::Info,
            source: "X".into(),
            message: msg.into(),
        }
    }

    fn trained() -> Detector {
        let mk = |id: &str, k: u32| {
            Session::new(
                id,
                vec![
                    line(0, "Registering block manager endpoint on host1"),
                    line(10, &format!("Starting task {k} in stage 0")),
                    line(
                        20,
                        &format!("Finished task {k} in stage 0 and sent 9 bytes to driver"),
                    ),
                    line(30, "Shutdown hook called"),
                ],
            )
        };
        Trainer::default().train(&[mk("c0", 1), mk("c1", 2), mk("c2", 3)])
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            for id in ["container_01", "container_02", "x"] {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards));
            }
        }
        // different ids actually spread (not all on shard 0)
        let spread: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of(&format!("c{i}"), 8)).collect();
        assert!(spread.len() > 4, "{spread:?}");
    }

    #[test]
    fn end_to_end_shard_worker_matches_batch_detection() {
        let det = Arc::new(trained());
        let queue = Arc::new(ShardQueue::new(64, Backpressure::Block));
        let metrics = Arc::new(ShardMetrics::default());
        let sink = Arc::new(AnomalySink::new(16, None).unwrap());
        let shard = ShardHandle::spawn(
            0,
            Arc::clone(&det),
            Arc::clone(&queue),
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Duration::from_secs(60),
        )
        .unwrap();
        let session = Session::new(
            "c9",
            vec![
                line(0, "Registering block manager endpoint on host1"),
                line(5, "spill 1 written to /tmp/x.out"),
                line(10, "Starting task 9 in stage 0"),
                line(30, "Shutdown hook called"),
            ],
        );
        for l in &session.lines {
            queue.push(ShardMsg::Line {
                session: "c9".into(),
                line: l.clone(),
                enqueued: Instant::now(),
            });
        }
        queue.push_control(ShardMsg::End {
            session: "c9".into(),
        });
        queue.push_control(ShardMsg::Shutdown);
        shard.join();
        let reports = sink.recent_reports(10);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0], det.detect_session(&session));
        assert_eq!(metrics.ingested.load(Ordering::Relaxed), 4);
        assert_eq!(metrics.sessions_closed.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.sessions_live.load(Ordering::Relaxed), 0);
        assert!(metrics.feed_latency.count() == 4);
    }

    #[test]
    fn idle_sessions_are_evicted_with_final_report() {
        let det = Arc::new(trained());
        let queue = Arc::new(ShardQueue::new(64, Backpressure::Block));
        let metrics = Arc::new(ShardMetrics::default());
        let sink = Arc::new(AnomalySink::new(16, None).unwrap());
        let shard = ShardHandle::spawn(
            0,
            det,
            Arc::clone(&queue),
            Arc::clone(&metrics),
            Arc::clone(&sink),
            Duration::from_millis(50),
        )
        .unwrap();
        queue.push(ShardMsg::Line {
            session: "idle1".into(),
            line: line(0, "Starting task 9 in stage 0"),
            enqueued: Instant::now(),
        });
        // wait well past the idle timeout + scan tick
        let deadline = Instant::now() + Duration::from_secs(5);
        while sink.completed() == 0 && Instant::now() < deadline {
            sync::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(sink.completed(), 1, "idle session must be evicted");
        assert_eq!(metrics.sessions_evicted.load(Ordering::Relaxed), 1);
        let report = &sink.recent_reports(1)[0];
        assert_eq!(report.session, "idle1");
        // truncated session → structural anomalies in the final report
        assert!(report.is_problematic());
        queue.push_control(ShardMsg::Shutdown);
        shard.join();
    }
}
