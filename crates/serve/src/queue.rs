//! Bounded per-shard message queues with pluggable backpressure.
//!
//! std's `sync_channel` only blocks when full; a serving front end also
//! needs load-shedding, so this is a small Mutex+Condvar MPSC queue with
//! three policies ([`Backpressure`]). Control messages (drain, shutdown)
//! always bypass the capacity check — shedding a drain request under load
//! would deadlock the very mechanism meant to relieve the load.

use std::collections::VecDeque;
use std::str::FromStr;
use std::time::Duration;
use sync::atomic::{AtomicU64, Ordering};
use sync::{Condvar, Mutex};

/// What to do when a shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the producer (the connection handler) until space frees up —
    /// lossless; TCP flow control pushes back on the client.
    #[default]
    Block,
    /// Drop the incoming line (tail drop) — newest data is sacrificed.
    DropNewest,
    /// Drop the oldest queued line to admit the new one (head drop) —
    /// keeps the stream fresh at the cost of history.
    DropOldest,
}

impl Backpressure {
    /// Canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Backpressure::Block => "block",
            Backpressure::DropNewest => "drop-newest",
            Backpressure::DropOldest => "drop-oldest",
        }
    }
}

impl FromStr for Backpressure {
    type Err = String;

    fn from_str(s: &str) -> Result<Backpressure, String> {
        match s {
            "block" => Ok(Backpressure::Block),
            "drop-newest" => Ok(Backpressure::DropNewest),
            "drop-oldest" => Ok(Backpressure::DropOldest),
            other => Err(format!(
                "unknown backpressure policy '{other}' (use block, drop-newest or drop-oldest)"
            )),
        }
    }
}

/// Outcome of a push, for callers that count drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The message was enqueued.
    Enqueued,
    /// The message itself was shed (drop-newest).
    DroppedNew,
    /// An older queued message was shed to admit this one (drop-oldest).
    DroppedOld,
}

struct Inner<T> {
    q: VecDeque<T>,
    /// Lockstep with `q`: `true` marks a control message. Kept separate so
    /// `T` stays opaque; the flags let capacity checks and drop-oldest
    /// eviction see *data* messages only — evicting a queued End / Drain /
    /// Shutdown to admit a log line would lose protocol state (or hang
    /// whoever is waiting on that control message's ack).
    control: VecDeque<bool>,
    /// Count of `true` entries in `control`.
    control_len: usize,
    closed: bool,
}

impl<T> Inner<T> {
    fn data_len(&self) -> usize {
        self.q.len() - self.control_len
    }

    fn pop_front(&mut self) -> Option<T> {
        let msg = self.q.pop_front()?;
        if self.control.pop_front() == Some(true) {
            self.control_len -= 1;
        }
        Some(msg)
    }

    fn push_back(&mut self, msg: T, is_control: bool) {
        self.q.push_back(msg);
        self.control.push_back(is_control);
        if is_control {
            self.control_len += 1;
        }
    }

    /// Remove the oldest *data* message (drop-oldest eviction). Callers
    /// only invoke this when `data_len() > 0`, so a scan must succeed;
    /// control messages rarely queue up, so the scan is short in practice.
    fn evict_oldest_data(&mut self) {
        if let Some(i) = self.control.iter().position(|c| !c) {
            self.q.remove(i);
            self.control.remove(i);
        }
    }
}

/// A bounded MPSC queue between connection handlers and one shard worker.
pub struct ShardQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    policy: Backpressure,
    dropped: AtomicU64,
}

impl<T> ShardQueue<T> {
    /// A queue holding at most `capacity` data messages.
    pub fn new(capacity: usize, policy: Backpressure) -> ShardQueue<T> {
        ShardQueue {
            inner: Mutex::new(Inner {
                q: VecDeque::with_capacity(capacity.min(4096)),
                control: VecDeque::with_capacity(capacity.min(4096)),
                control_len: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            dropped: AtomicU64::new(0),
        }
    }

    /// Enqueue a data message under the configured policy.
    pub fn push(&self, msg: T) -> PushOutcome {
        let mut inner = self.inner.lock();
        if inner.closed {
            // Late lines racing a shutdown are shed, not processed.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return PushOutcome::DroppedNew;
        }
        let outcome = match self.policy {
            Backpressure::Block => {
                while inner.data_len() >= self.capacity && !inner.closed {
                    inner = self.not_full.wait(inner);
                }
                if inner.closed {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return PushOutcome::DroppedNew;
                }
                inner.push_back(msg, false);
                PushOutcome::Enqueued
            }
            Backpressure::DropNewest => {
                if inner.data_len() >= self.capacity {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    PushOutcome::DroppedNew
                } else {
                    inner.push_back(msg, false);
                    PushOutcome::Enqueued
                }
            }
            Backpressure::DropOldest => {
                if inner.data_len() >= self.capacity {
                    inner.evict_oldest_data();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    inner.push_back(msg, false);
                    PushOutcome::DroppedOld
                } else {
                    inner.push_back(msg, false);
                    PushOutcome::Enqueued
                }
            }
        };
        drop(inner);
        // Mutant hook for the model-check self-test: compiling with
        // `--cfg intellog_mutant_lost_wakeup` (on top of intellog_check)
        // deletes this notify, and tests/model_check.rs proves the checker
        // flags the resulting lost wakeup as a forced timeout.
        #[cfg(not(all(intellog_check, intellog_mutant_lost_wakeup)))]
        self.not_empty.notify_one();
        outcome
    }

    /// Nonblocking enqueue for event-loop producers (the gateway must
    /// never park its poll thread on a shard queue). Drop policies behave
    /// exactly as [`ShardQueue::push`]; under [`Backpressure::Block`] a
    /// full queue returns `Err(msg)` instead of waiting, handing the
    /// message back so the caller can park it and stop reading that
    /// connection — TCP flow control then does the blocking.
    pub fn try_push(&self, msg: T) -> Result<PushOutcome, T> {
        let mut inner = self.inner.lock();
        if inner.closed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(PushOutcome::DroppedNew);
        }
        let outcome = match self.policy {
            Backpressure::Block => {
                if inner.data_len() >= self.capacity {
                    return Err(msg);
                }
                inner.push_back(msg, false);
                PushOutcome::Enqueued
            }
            Backpressure::DropNewest => {
                if inner.data_len() >= self.capacity {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    PushOutcome::DroppedNew
                } else {
                    inner.push_back(msg, false);
                    PushOutcome::Enqueued
                }
            }
            Backpressure::DropOldest => {
                if inner.data_len() >= self.capacity {
                    inner.evict_oldest_data();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    inner.push_back(msg, false);
                    PushOutcome::DroppedOld
                } else {
                    inner.push_back(msg, false);
                    PushOutcome::Enqueued
                }
            }
        };
        drop(inner);
        if outcome != PushOutcome::DroppedNew {
            self.not_empty.notify_one();
        }
        Ok(outcome)
    }

    /// Enqueue a control message, ignoring capacity and policy. Control
    /// messages keep FIFO order with data (an End must not overtake its
    /// session's lines) but are invisible to the capacity check and
    /// immune to drop-oldest eviction.
    pub fn push_control(&self, msg: T) {
        let mut inner = self.inner.lock();
        inner.push_back(msg, true);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Dequeue, waiting up to `timeout`. `None` means timeout (the queue
    /// may also be closed — check [`ShardQueue::is_closed`] if it matters).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(msg) = inner.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(msg);
            }
            let (next, res) = self.not_empty.wait_timeout(inner, timeout);
            inner = next;
            if res.timed_out() {
                return inner.pop_front();
            }
        }
    }

    /// Dequeue *everything* currently queued in one lock round-trip,
    /// waiting up to `timeout` for the first message. The internal deque is
    /// swapped with `out` (which must arrive empty), so the consumer
    /// processes the batch lock-free while producers refill the fresh
    /// (previously drained) buffer — steady state allocates nothing.
    /// Returns the number of messages drained (0 on timeout).
    pub fn drain_timeout(&self, timeout: Duration, out: &mut VecDeque<T>) -> usize {
        debug_assert!(out.is_empty(), "drain target must be empty");
        let mut inner = self.inner.lock();
        loop {
            if !inner.q.is_empty() {
                std::mem::swap(&mut inner.q, out);
                inner.control.clear();
                inner.control_len = 0;
                drop(inner);
                // The whole capacity just freed: wake every blocked producer.
                self.not_full.notify_all();
                return out.len();
            }
            let (next, res) = self.not_empty.wait_timeout(inner, timeout);
            inner = next;
            if res.timed_out() {
                // Take whatever raced in with the timeout, if anything.
                std::mem::swap(&mut inner.q, out);
                inner.control.clear();
                inner.control_len = 0;
                drop(inner);
                if !out.is_empty() {
                    self.not_full.notify_all();
                }
                return out.len();
            }
        }
    }

    /// Close the queue: blocked producers wake and shed their messages.
    /// Already-queued messages stay poppable.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// `true` after [`ShardQueue::close`].
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().q.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Messages shed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync::Arc;

    #[test]
    fn policy_parsing() {
        assert_eq!("block".parse(), Ok(Backpressure::Block));
        assert_eq!("drop-newest".parse(), Ok(Backpressure::DropNewest));
        assert_eq!("drop-oldest".parse(), Ok(Backpressure::DropOldest));
        assert!("fifo".parse::<Backpressure>().is_err());
        assert_eq!(Backpressure::DropOldest.name(), "drop-oldest");
    }

    #[test]
    fn try_push_never_blocks() {
        let q = ShardQueue::new(1, Backpressure::Block);
        assert_eq!(q.try_push(1), Ok(PushOutcome::Enqueued));
        assert_eq!(q.try_push(2), Err(2), "full Block queue hands msg back");
        assert_eq!(q.dropped(), 0, "a refused try_push is not a drop");
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.try_push(2), Ok(PushOutcome::Enqueued));
        let q = ShardQueue::new(1, Backpressure::DropOldest);
        q.push(1);
        assert_eq!(q.try_push(2), Ok(PushOutcome::DroppedOld));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
    }

    #[test]
    fn drop_newest_sheds_incoming() {
        let q = ShardQueue::new(2, Backpressure::DropNewest);
        assert_eq!(q.push(1), PushOutcome::Enqueued);
        assert_eq!(q.push(2), PushOutcome::Enqueued);
        assert_eq!(q.push(3), PushOutcome::DroppedNew);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn drop_oldest_sheds_queued() {
        let q = ShardQueue::new(2, Backpressure::DropOldest);
        q.push(1);
        q.push(2);
        assert_eq!(q.push(3), PushOutcome::DroppedOld);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(3));
    }

    #[test]
    fn control_bypasses_capacity() {
        let q = ShardQueue::new(1, Backpressure::DropNewest);
        q.push(1);
        q.push_control(99);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(99));
    }

    #[test]
    fn drop_oldest_never_evicts_control() {
        // Regression: eviction used to pop_front blindly, so a queued
        // control message (End / Drain ack / Shutdown) in front of the
        // data could be shed — losing protocol state and counting a
        // non-line as a dropped line.
        let q = ShardQueue::new(2, Backpressure::DropOldest);
        q.push_control(90); // oldest entry is control
        q.push(1);
        q.push(2); // data full (control doesn't count toward capacity)
        assert_eq!(q.push(3), PushOutcome::DroppedOld);
        assert_eq!(q.dropped(), 1, "only the data line counts as shed");
        // control survived in its original FIFO position; line 1 is gone
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(90));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn queued_control_never_blocks_or_sheds_data() {
        // Capacity counts data only: a backlog of control messages must
        // not make Block try_push refuse (parking the connection) or
        // DropNewest shed incoming lines.
        let q = ShardQueue::new(2, Backpressure::Block);
        q.push_control(90);
        q.push_control(91);
        assert_eq!(q.try_push(1), Ok(PushOutcome::Enqueued));
        assert_eq!(q.try_push(2), Ok(PushOutcome::Enqueued));
        assert_eq!(q.try_push(3), Err(3), "data capacity is still enforced");
        let q = ShardQueue::new(1, Backpressure::DropNewest);
        q.push_control(90);
        assert_eq!(q.push(1), PushOutcome::Enqueued);
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn block_policy_waits_for_consumer() {
        let q = Arc::new(ShardQueue::new(1, Backpressure::Block));
        q.push(1);
        let q2 = Arc::clone(&q);
        let producer = sync::thread::spawn(move || q2.push(2));
        sync::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "producer must be blocked");
        assert_eq!(q.pop_timeout(Duration::from_millis(100)), Some(1));
        assert_eq!(producer.join().unwrap(), PushOutcome::Enqueued);
        assert_eq!(q.pop_timeout(Duration::from_millis(100)), Some(2));
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn drain_takes_everything_in_order() {
        let q = ShardQueue::new(8, Backpressure::Block);
        for i in 0..5 {
            q.push(i);
        }
        let mut batch = VecDeque::new();
        assert_eq!(q.drain_timeout(Duration::from_millis(1), &mut batch), 5);
        assert_eq!(
            batch.iter().copied().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(q.is_empty());
        batch.clear();
        assert_eq!(q.drain_timeout(Duration::from_millis(1), &mut batch), 0);
    }

    #[test]
    fn drain_unblocks_full_producers() {
        let q = Arc::new(ShardQueue::new(1, Backpressure::Block));
        q.push(1);
        let q2 = Arc::clone(&q);
        let producer = sync::thread::spawn(move || q2.push(2));
        sync::thread::sleep(Duration::from_millis(20));
        let mut batch = VecDeque::new();
        assert_eq!(q.drain_timeout(Duration::from_millis(500), &mut batch), 1);
        assert_eq!(producer.join().unwrap(), PushOutcome::Enqueued);
        batch.clear();
        assert_eq!(q.drain_timeout(Duration::from_millis(500), &mut batch), 1);
        assert_eq!(batch.pop_front(), Some(2));
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(ShardQueue::new(1, Backpressure::Block));
        q.push(1);
        let q2 = Arc::clone(&q);
        let producer = sync::thread::spawn(move || q2.push(2));
        sync::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), PushOutcome::DroppedNew);
        // queued data remains poppable after close
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
    }
}
