//! # intellog-serve — the multi-tenant online serving data plane
//!
//! The paper's detector consumes incoming logs (Fig. 2); this crate holds
//! the data plane that makes that real as a service: tenant-aware shard
//! workers, bounded queues, the model registry with hot reload, and the
//! consistent-hash session ring. The connection front end — the
//! event-driven nonblocking socket loop — lives in `crates/gateway` and
//! drives everything here. Built on std-only primitives (no async runtime
//! — the vendored offline deps don't include one, and threads + bounded
//! queues are all this workload needs):
//!
//! * [`proto`] — the line-framed tab-separated wire protocol (parse and
//!   render halves shared by gateway, client and replay);
//! * [`shard`] — per-shard workers owning their sessions' movable
//!   [`anomaly::StreamState`]s, with idle-timeout eviction and
//!   snapshot/restore so sessions survive live re-sharding;
//! * [`registry`] — the tenant → model-version table: sessions pin their
//!   version at open, `LOAD` swaps atomically, old versions drain;
//! * [`ring`] — consistent-hash (virtual-node) session→shard routing that
//!   moves only ~K/N sessions when a shard is added or drained;
//! * [`queue`] — bounded queues with `block` / `drop-newest` /
//!   `drop-oldest` backpressure, drop counters, and a nonblocking
//!   `try_push` for event-loop producers;
//! * [`sink`] — where completed session reports land: a tenant-tagged
//!   bounded in-memory ring plus an optional JSONL file;
//! * [`metrics`] — wait-free per-shard and per-tenant counters and a
//!   fixed-bucket feed latency histogram (p50/p99);
//! * [`store`] — the versioned on-disk model store (format-version header
//!   and CRC-32, refusing corrupt or mismatched models) shared with the
//!   batch `train`/`detect` CLI;
//! * [`client`] / [`replay`] — the protocol client and the dlasim load
//!   generator (now multi-connection) that verifies online verdicts equal
//!   offline detection.

#![forbid(unsafe_code)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod queue;
pub mod registry;
pub mod replay;
pub mod ring;
pub mod shard;
pub mod sink;
pub mod store;

pub use client::ServeClient;
pub use metrics::{
    LatencyHistogram, ShardMetrics, ShardSnapshot, StatsSnapshot, TenantMetrics, TenantSnapshot,
};
pub use proto::{parse_log, render_log, DEFAULT_TENANT};
pub use queue::{Backpressure, PushOutcome, ShardQueue};
pub use registry::{LoadOutcome, ModelLease, ModelVersion, TenantEntry, TenantRegistry};
pub use replay::{generate_jobs, run_replay, ReplayConfig, ReplayOutcome};
pub use ring::{session_key, Ring, DEFAULT_VNODES};
pub use shard::{SessionState, ShardHandle, ShardMsg};
pub use sink::AnomalySink;
pub use store::{crc32, ModelStore, StoreError, MODEL_FORMAT_VERSION};
