//! # intellog-serve — sharded online ingestion and anomaly serving
//!
//! The paper's detector consumes incoming logs (Fig. 2); this crate is the
//! subsystem that makes that real: a long-running TCP front end that turns
//! a trained model into a service. Built on std-only primitives (no async
//! runtime — the vendored offline deps don't include one, and threads +
//! bounded queues are all this workload needs):
//!
//! * [`server`] — line-framed TCP ingestion, session-hash routing to shard
//!   workers, `STATS`/`ANOMALIES`/`REPORTS`/`DRAIN`/`SHUTDOWN` control
//!   verbs, graceful drain;
//! * [`shard`] — per-shard workers owning their sessions'
//!   [`anomaly::StreamDetector`]s over one shared immutable model, with
//!   idle-timeout eviction;
//! * [`queue`] — bounded queues with `block` / `drop-newest` /
//!   `drop-oldest` backpressure and drop counters;
//! * [`sink`] — where completed session reports land: a bounded in-memory
//!   ring plus an optional JSONL file of problematic reports;
//! * [`metrics`] — wait-free per-shard counters and a fixed-bucket feed
//!   latency histogram (p50/p99);
//! * [`store`] — the versioned on-disk model store (format-version header
//!   and CRC-32, refusing corrupt or mismatched models) shared with the
//!   batch `train`/`detect` CLI;
//! * [`client`] / [`replay`] — the protocol client and the dlasim load
//!   generator that verifies online verdicts equal offline detection.

#![forbid(unsafe_code)]

pub mod client;
pub mod metrics;
pub mod queue;
pub mod replay;
pub mod server;
pub mod shard;
pub mod sink;
pub mod store;

pub use client::ServeClient;
pub use metrics::{LatencyHistogram, ShardMetrics, ShardSnapshot, StatsSnapshot};
pub use queue::{Backpressure, PushOutcome, ShardQueue};
pub use replay::{generate_jobs, run_replay, ReplayConfig, ReplayOutcome};
pub use server::{ServeConfig, Server};
pub use shard::{shard_of, ShardHandle, ShardMsg};
pub use sink::AnomalySink;
pub use store::{crc32, ModelStore, StoreError, MODEL_FORMAT_VERSION};
