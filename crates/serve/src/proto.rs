//! The wire protocol: line-framed, tab-separated ASCII.
//!
//! Trivially scriptable with `nc` and fast to parse:
//!
//! ```text
//! TENANT\t<id>                 → OK 0   route this connection's data verbs
//! LOG\t<session>\t<ts_ms>\t<level>\t<source>\t<message>   fire-and-forget
//! END\t<session>                                          fire-and-forget
//! PING                         → OK 0
//! STATS                        → OK 1  + one StatsSnapshot JSON line
//! METRICS                      → OK <k> + k Prometheus text-format lines
//! REPORTS\t<n>[\t<tenant>]     → OK <k> + k SessionReport JSON lines
//! ANOMALIES\t<n>[\t<tenant>]   → OK <k> + k problematic SessionReport lines
//! LOAD\t<tenant>\t<path>       → OK 1  + one LOAD result line (async ack)
//! ADDSHARD                     → OK <new shard index>
//! DRAINSHARD\t<index>          → OK <sessions moved>
//! DRAIN[\t<tenant>]            → OK <finished sessions>  (after queues empty)
//! SHUTDOWN                     → OK 0, then the server drains and exits
//! ```
//!
//! Data lines carry no reply so a client can saturate the socket; TCP flow
//! control plus the `block` backpressure policy make the path lossless,
//! while the `drop-*` policies shed load at the shard queues and count
//! every shed line. This module holds the parse/render halves shared by
//! the gateway, the client and the replay generator.

use spell::{Level, LogLine};

/// Default tenant id used when a connection never sends `TENANT` (and by
/// the single-tenant CLI flow).
pub const DEFAULT_TENANT: &str = "default";

/// Parse `LOG\t<session>\t<ts_ms>\t<level>\t<source>\t<message>`; the
/// message is everything after the fifth tab (tabs inside it survive).
pub fn parse_log(line: &str) -> Option<(String, LogLine)> {
    let mut fields = line.splitn(6, '\t');
    let _verb = fields.next()?;
    let session = fields.next()?;
    if session.is_empty() {
        return None;
    }
    let ts_ms: u64 = fields.next()?.parse().ok()?;
    let level = Level::parse(fields.next()?)?;
    let source = fields.next()?;
    let message = fields.next()?;
    Some((
        session.to_string(),
        LogLine {
            ts_ms,
            level,
            source: source.to_string(),
            message: message.to_string(),
        },
    ))
}

/// Render the `LOG` wire line for a structured log line (the inverse of
/// [`parse_log`], used by the client and the replay generator).
pub fn render_log(session: &str, line: &LogLine) -> String {
    format!(
        "LOG\t{session}\t{}\t{}\t{}\t{}",
        line.ts_ms,
        line.level.as_str(),
        line.source,
        line.message
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_line_roundtrips_through_wire_format() {
        let l = LogLine {
            ts_ms: 1234,
            level: Level::Warn,
            source: "BlockManager".into(),
            message: "spill 1 written to /tmp/x\twith a tab".into(),
        };
        let wire = render_log("container_01", &l);
        let (session, parsed) = parse_log(&wire).expect("parse");
        assert_eq!(session, "container_01");
        assert_eq!(parsed, l);
    }

    #[test]
    fn malformed_log_lines_are_rejected() {
        assert!(parse_log("LOG\t\t0\tINFO\tX\tmsg").is_none()); // empty session
        assert!(parse_log("LOG\ts\tnotanum\tINFO\tX\tmsg").is_none());
        assert!(parse_log("LOG\ts\t0\tLOUD\tX\tmsg").is_none());
        assert!(parse_log("LOG\ts\t0\tINFO\tX").is_none()); // missing message
    }
}
