//! Per-shard serving metrics.
//!
//! Everything here is updated from the hot ingestion path, so the design
//! rule is: atomics only, no locks, no allocation. Latency percentiles come
//! from the shared `intellog-obs` fixed-bucket power-of-two histogram — the
//! reported p50/p99 are bucket upper bounds, i.e. exact to within 2× which
//! is all a serving dashboard needs, in exchange for a wait-free `record`.
//!
//! These metrics are *intrinsic* to the server (they back the `STATS` and
//! `METRICS` verbs), so they use the obs primitives directly, ungated —
//! they record whether or not the process-wide observability flag is on.

use serde::{Deserialize, Serialize};
use sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (re-exported from `intellog-obs`
/// since the bespoke histogram was replaced by the shared one).
pub const LATENCY_BUCKETS: usize = obs::HISTOGRAM_BUCKETS;

/// A wait-free fixed-bucket histogram of microsecond latencies — now the
/// shared observability-layer histogram (identical bucket semantics to the
/// bespoke one this replaces, plus a saturating `_sum` for Prometheus).
pub type LatencyHistogram = obs::Histogram;

/// Counters owned by one shard worker (shared with the acceptor threads
/// that enqueue into it and with `STATS` snapshotting).
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Log lines fed into a `StreamDetector`.
    pub ingested: AtomicU64,
    /// Log lines dropped by the backpressure policy before processing.
    pub dropped: AtomicU64,
    /// Online anomalies (unexpected messages) surfaced by `feed`.
    pub online_anomalies: AtomicU64,
    /// Sessions ever opened on this shard.
    pub sessions_opened: AtomicU64,
    /// Sessions closed by an explicit `END` or a drain.
    pub sessions_closed: AtomicU64,
    /// Sessions evicted by the idle timeout.
    pub sessions_evicted: AtomicU64,
    /// Sessions currently live (opened − closed − evicted, tracked
    /// directly so `STATS` needs one load).
    pub sessions_live: AtomicU64,
    /// Enqueue→processed latency per line.
    pub feed_latency: LatencyHistogram,
}

/// Point-in-time, serialisable view of one shard ( `STATS` verb).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Lines fed into detectors.
    pub ingested: u64,
    /// Lines dropped by backpressure.
    pub dropped: u64,
    /// Online (unexpected-message) anomalies.
    pub online_anomalies: u64,
    /// Sessions currently live.
    pub sessions_live: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions closed by END/drain.
    pub sessions_closed: u64,
    /// Sessions evicted by idle timeout.
    pub sessions_evicted: u64,
    /// Lines currently queued.
    pub queue_len: usize,
    /// Median feed latency (µs, bucket upper bound).
    pub feed_p50_us: u64,
    /// 99th-percentile feed latency (µs, bucket upper bound).
    pub feed_p99_us: u64,
}

impl ShardMetrics {
    /// Snapshot the counters (relaxed loads; values are monotonic per
    /// counter but not mutually consistent — fine for monitoring).
    pub fn snapshot(&self, shard: usize, queue_len: usize) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            ingested: self.ingested.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            online_anomalies: self.online_anomalies.load(Ordering::Relaxed),
            sessions_live: self.sessions_live.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            queue_len,
            feed_p50_us: self.feed_latency.quantile_us(0.50),
            feed_p99_us: self.feed_latency.quantile_us(0.99),
        }
    }
}

/// Counters owned by one tenant (updated by shard workers, read by
/// `STATS`). Same design rule as [`ShardMetrics`]: atomics only.
#[derive(Debug, Default)]
pub struct TenantMetrics {
    /// Lines fed into this tenant's sessions.
    pub lines: AtomicU64,
    /// Sessions ever opened for this tenant.
    pub sessions_opened: AtomicU64,
    /// Sessions finished (END, drain, or idle eviction).
    pub sessions_closed: AtomicU64,
    /// Online (unexpected-message) verdicts.
    pub online_anomalies: AtomicU64,
    /// Completed reports that were problematic.
    pub reports_problematic: AtomicU64,
}

impl TenantMetrics {
    /// Snapshot this tenant's counters.
    pub fn snapshot(&self, tenant: &str, model_version: u64, reloads: u64) -> TenantSnapshot {
        let opened = self.sessions_opened.load(Ordering::Relaxed);
        let closed = self.sessions_closed.load(Ordering::Relaxed);
        TenantSnapshot {
            tenant: tenant.to_string(),
            model_version,
            reloads,
            lines: self.lines.load(Ordering::Relaxed),
            sessions_live: opened.saturating_sub(closed),
            sessions_opened: opened,
            sessions_closed: closed,
            online_anomalies: self.online_anomalies.load(Ordering::Relaxed),
            reports_problematic: self.reports_problematic.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time, serialisable view of one tenant (`STATS` verb).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub tenant: String,
    /// Current model version number.
    pub model_version: u64,
    /// Completed hot reloads.
    pub reloads: u64,
    /// Lines fed into this tenant's sessions.
    pub lines: u64,
    /// Sessions currently live (opened − closed).
    pub sessions_live: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions finished.
    pub sessions_closed: u64,
    /// Online verdicts.
    pub online_anomalies: u64,
    /// Problematic completed reports.
    pub reports_problematic: u64,
}

/// The `STATS` reply: whole-server view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Number of live shards.
    pub shards: usize,
    /// Backpressure policy name.
    pub backpressure: String,
    /// Total lines ingested.
    pub ingested: u64,
    /// Total lines dropped.
    pub dropped: u64,
    /// Total online anomalies.
    pub online_anomalies: u64,
    /// Total live sessions.
    pub sessions_live: u64,
    /// Completed (closed + evicted) session reports produced.
    pub reports_completed: u64,
    /// Of those, problematic ones.
    pub reports_problematic: u64,
    /// Protocol lines the server could not parse.
    pub protocol_errors: u64,
    /// Connections currently open on the gateway.
    pub connections_open: u64,
    /// Connections ever accepted.
    pub connections_total: u64,
    /// Ring rebalances completed (ADDSHARD / DRAINSHARD).
    pub rebalances: u64,
    /// Sessions snapshot-moved between shards by rebalances.
    pub sessions_moved: u64,
    /// Anomaly counts by kind across all completed reports.
    pub anomalies_by_kind: std::collections::BTreeMap<String, u64>,
    /// Per-shard detail.
    pub per_shard: Vec<ShardSnapshot>,
    /// Per-tenant detail, in tenant-id order.
    pub per_tenant: Vec<TenantSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        // The shared obs histogram must keep the bucket semantics the
        // bespoke serve histogram had (this test predates the swap).
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for _ in 0..99 {
            h.record_us(3); // bucket [2,4)
        }
        h.record_us(1_000_000); // one outlier
        assert_eq!(h.count(), 100);
        // interpolated within the bucket: p50 ≈ 3, p99 at the top edge
        assert_eq!(h.quantile_us(0.50), 3);
        assert_eq!(h.quantile_us(0.99), 4);
        assert!(h.quantile_us(1.0) >= 1_000_000);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = LatencyHistogram::default();
        h.record_us(0);
        assert_eq!(h.quantile_us(0.5), 2);
    }

    #[test]
    fn snapshot_reads_counters() {
        let m = ShardMetrics::default();
        m.ingested.store(7, Ordering::Relaxed);
        m.sessions_live.store(2, Ordering::Relaxed);
        let s = m.snapshot(3, 11);
        assert_eq!(s.shard, 3);
        assert_eq!(s.ingested, 7);
        assert_eq!(s.sessions_live, 2);
        assert_eq!(s.queue_len, 11);
    }
}
