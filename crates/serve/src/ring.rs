//! Consistent-hash session routing.
//!
//! Sessions are routed to shards through a consistent-hash ring with
//! virtual nodes instead of `hash(session) % shards`. The modulo scheme
//! reshuffles almost every session when the shard count changes; the ring
//! moves only the sessions whose arc is claimed by the new shard (on add)
//! or owned by the departing shard (on drain) — in expectation K/N of K
//! sessions for N shards. That bound is what makes live re-sharding
//! (ADDSHARD / DRAINSHARD) cheap: the gateway only snapshots and restores
//! the moved sessions, everything else keeps flowing.
//!
//! The ring is an immutable value: rebalancing builds a *new* ring with
//! [`Ring::with_shard`] / [`Ring::without_shard`] and the gateway swaps an
//! `Arc<Ring>` once every shard has acked the move. Shard workers therefore
//! never observe a half-updated ring.

/// Virtual nodes per shard. More vnodes → smoother balance, slower build;
/// 64 keeps max/mean session skew under ~30% for small shard counts.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a over the session key — the same family the old modulo router
/// used, kept so routing stays platform-independent and deterministic.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 — places vnode points on the ring. Decorrelates the point
/// positions from the (small, sequential) shard indices.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Routing key for a session: tenant-qualified so two tenants using the
/// same session id stay independent. `\x1f` (ASCII unit separator) cannot
/// appear in either part — the wire protocol is tab/newline-framed and
/// rejects control bytes.
pub fn session_key(tenant: &str, session: &str) -> String {
    format!("{tenant}\x1f{session}")
}

/// An immutable consistent-hash ring over a set of shard indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// (point, shard) pairs sorted by point; ties broken by shard index
    /// so ring construction is order-independent.
    points: Vec<(u64, usize)>,
    /// Live shard indices, sorted. Indices are stable handles into the
    /// gateway's worker table, so they are not required to be contiguous
    /// (draining shard 1 of 3 leaves {0, 2}).
    shards: Vec<usize>,
    vnodes: usize,
}

impl Ring {
    /// Build a ring over `shards` (deduplicated) with `vnodes` virtual
    /// nodes per shard. Panics if `shards` is empty or `vnodes` is zero —
    /// a ring with nowhere to route is a construction bug.
    pub fn new(shards: &[usize], vnodes: usize) -> Ring {
        assert!(!shards.is_empty(), "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one vnode per shard");
        let mut uniq: Vec<usize> = shards.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        let mut points = Vec::with_capacity(uniq.len() * vnodes);
        for &s in &uniq {
            for v in 0..vnodes {
                // vnode point = splitmix64 of (shard, vnode) packed so
                // distinct pairs map to distinct inputs
                let seed = ((s as u64) << 20) | (v as u64);
                points.push((splitmix64(seed), s));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            shards: uniq,
            vnodes,
        }
    }

    /// Ring over shards `0..n`.
    pub fn contiguous(n: usize, vnodes: usize) -> Ring {
        let shards: Vec<usize> = (0..n).collect();
        Ring::new(&shards, vnodes)
    }

    /// The shard owning `key`: the first vnode point at or after the key's
    /// hash, wrapping to the start of the ring.
    ///
    /// The FNV hash is finalized through splitmix64: session ids that
    /// differ only in trailing digits (`container_00000001`, `…02`, …)
    /// perturb FNV-1a's low bits only, and the ring's binary search is
    /// ordered by the *high* bits — without the avalanche step every
    /// session of a job lands in one arc, i.e. on one shard.
    pub fn owner(&self, key: &str) -> usize {
        let h = splitmix64(fnv1a(key));
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = if idx == self.points.len() {
            self.points[0]
        } else {
            self.points[idx]
        };
        shard
    }

    /// A new ring with `shard` added (no-op clone if already present).
    pub fn with_shard(&self, shard: usize) -> Ring {
        let mut shards = self.shards.clone();
        if !shards.contains(&shard) {
            shards.push(shard);
        }
        Ring::new(&shards, self.vnodes)
    }

    /// A new ring with `shard` removed. Panics if it is the last shard —
    /// the gateway refuses to drain below one shard at the protocol layer.
    pub fn without_shard(&self, shard: usize) -> Ring {
        let shards: Vec<usize> = self
            .shards
            .iter()
            .copied()
            .filter(|&s| s != shard)
            .collect();
        assert!(!shards.is_empty(), "cannot drain the last shard");
        Ring::new(&shards, self.vnodes)
    }

    /// Live shard indices, sorted ascending.
    pub fn shards(&self) -> &[usize] {
        &self.shards
    }

    /// Whether `shard` participates in this ring.
    pub fn contains(&self, shard: usize) -> bool {
        self.shards.binary_search(&shard).is_ok()
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// A ring always has ≥1 shard; this exists for clippy's benefit.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| session_key("t0", &format!("s{i}")))
            .collect()
    }

    #[test]
    fn deterministic_and_order_independent() {
        let a = Ring::new(&[0, 1, 2], 32);
        let b = Ring::new(&[2, 0, 1, 1], 32);
        assert_eq!(a, b);
        for k in keys(100) {
            assert_eq!(a.owner(&k), b.owner(&k));
        }
    }

    #[test]
    fn owners_are_live_shards() {
        let r = Ring::new(&[0, 2, 5], 16);
        for k in keys(500) {
            assert!(r.contains(r.owner(&k)), "owner must be a live shard");
        }
    }

    #[test]
    fn add_moves_sessions_only_to_new_shard() {
        let before = Ring::contiguous(3, DEFAULT_VNODES);
        let after = before.with_shard(3);
        let mut moved = 0usize;
        for k in keys(2000) {
            let (a, b) = (before.owner(&k), after.owner(&k));
            if a != b {
                assert_eq!(b, 3, "a changed owner must be the new shard");
                moved += 1;
            }
        }
        // expectation is K/N = 500; allow generous slack, but it must be
        // far below the ~2/3 a modulo router would move
        assert!(moved > 0, "the new shard must claim some arc");
        assert!(moved < 1000, "moved {moved} of 2000 — not consistent");
    }

    #[test]
    fn remove_moves_only_removed_shards_sessions() {
        let before = Ring::contiguous(4, DEFAULT_VNODES);
        let after = before.without_shard(2);
        for k in keys(2000) {
            let (a, b) = (before.owner(&k), after.owner(&k));
            if a != 2 {
                assert_eq!(a, b, "sessions off the drained shard must not move");
            } else {
                assert_ne!(b, 2, "drained shard must own nothing after");
            }
        }
    }

    #[test]
    fn balance_is_reasonable() {
        let r = Ring::contiguous(4, DEFAULT_VNODES);
        let mut counts = [0usize; 4];
        for k in keys(8000) {
            counts[r.owner(&k)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max < min * 3,
            "shard load skew too high: {counts:?} (vnodes too few?)"
        );
    }

    #[test]
    #[should_panic(expected = "cannot drain the last shard")]
    fn refuses_to_drain_last_shard() {
        let _ = Ring::new(&[0], 8).without_shard(0);
    }
}
