//! Multi-tenant model registry with hot reload.
//!
//! Each tenant owns a sequence of model versions. Sessions *pin* the
//! version that was current when they opened (a [`ModelLease`]), so a
//! reload never changes the detector under a live session — the
//! no-straddle invariant ("no verdict may straddle two model versions")
//! holds by construction rather than by locking:
//!
//! 1. `LOAD <tenant> <path>` reads and CRC-verifies the model off the
//!    event loop (a background thread via the gateway), then calls
//!    [`TenantEntry::swap`], which atomically replaces the tenant's
//!    `current` version.
//! 2. New sessions lease the *new* version from that point on.
//! 3. The old version's lease count drains to zero as its sessions
//!    finish; [`ModelVersion::live`] going to 0 *is* the drain — there is
//!    no separate drain step to get wrong.
//!
//! The registry itself is a small `RwLock<BTreeMap>`: reads (every session
//! open) take the read lock; `LOAD`/tenant creation take the write lock.
//! Per-tenant ingest counters live in [`TenantMetrics`] so `STATS` can
//! report per-tenant breakdowns without walking shard state.

use crate::metrics::TenantMetrics;
use crate::store::{ModelStore, StoreError};
use anomaly::Detector;
use std::collections::BTreeMap;
use std::path::Path;
use sync::atomic::{AtomicU64, Ordering};
use sync::{Arc, RwLock};

/// One immutable model version. `live` counts the sessions currently
/// pinned to it (via [`ModelLease`]); the version is *drained* when the
/// count returns to zero.
pub struct ModelVersion {
    /// Monotonic per-tenant version number, starting at 1.
    pub version: u64,
    /// The frozen model.
    pub detector: Arc<Detector>,
    live: AtomicU64,
}

impl ModelVersion {
    fn new(version: u64, detector: Arc<Detector>) -> Arc<ModelVersion> {
        Arc::new(ModelVersion {
            version,
            detector,
            live: AtomicU64::new(0),
        })
    }

    /// Sessions currently pinned to this version.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Acquire)
    }
}

/// A session's pin on one model version. Holding a lease keeps the
/// version "live"; dropping it (session finished, evicted, or discarded
/// on a restore conflict) releases it. The lease is how the serving layer
/// guarantees every `feed` and the final `finish` of one session use the
/// same `Detector`.
pub struct ModelLease {
    version: Arc<ModelVersion>,
}

impl ModelLease {
    fn acquire(version: &Arc<ModelVersion>) -> ModelLease {
        version.live.fetch_add(1, Ordering::AcqRel);
        ModelLease {
            version: Arc::clone(version),
        }
    }

    /// The pinned detector.
    pub fn detector(&self) -> &Detector {
        &self.version.detector
    }

    /// The pinned version number.
    pub fn version(&self) -> u64 {
        self.version.version
    }
}

impl Drop for ModelLease {
    fn drop(&mut self) {
        self.version.live.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One tenant: its current model version and its serving counters.
pub struct TenantEntry {
    /// Tenant id (as used on the wire in `TENANT <id>`).
    pub name: String,
    current: RwLock<Arc<ModelVersion>>,
    reloads: AtomicU64,
    /// Per-tenant ingest/verdict counters (see `metrics.rs`).
    pub metrics: TenantMetrics,
}

impl TenantEntry {
    fn new(name: &str, detector: Arc<Detector>) -> Arc<TenantEntry> {
        Arc::new(TenantEntry {
            name: name.to_string(),
            current: RwLock::new(ModelVersion::new(1, detector)),
            reloads: AtomicU64::new(0),
            metrics: TenantMetrics::default(),
        })
    }

    /// The current model version (cheap: read lock + Arc clone).
    pub fn current(&self) -> Arc<ModelVersion> {
        Arc::clone(&self.current.read())
    }

    /// Lease the current version for a new session.
    pub fn open_session(&self) -> ModelLease {
        ModelLease::acquire(&self.current.read())
    }

    /// Hot-swap in a new detector. Returns `(new_version, old_version,
    /// old_live)` — `old_live` is how many sessions are still pinned to
    /// the outgoing version at swap time (they keep it alive until they
    /// finish).
    pub fn swap(&self, detector: Arc<Detector>) -> (u64, u64, u64) {
        let mut cur = self.current.write();
        let old = Arc::clone(&cur);
        let next = ModelVersion::new(old.version + 1, detector);
        let new_version = next.version;
        *cur = next;
        drop(cur);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        obs::inc!("gateway.reload.swaps");
        (new_version, old.version, old.live())
    }

    /// Completed reloads (swaps) for this tenant.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }
}

/// Outcome of a `LOAD`, reported back on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Tenant the model was loaded for.
    pub tenant: String,
    /// The now-current version number.
    pub version: u64,
    /// `true` if the tenant did not exist before this load.
    pub created: bool,
    /// Sessions still pinned to the previous version (0 for a new tenant).
    pub previous_live: u64,
    /// Intel Keys in the loaded model.
    pub keys: usize,
}

/// The tenant table. Keyed by tenant id; iteration order (for `STATS`) is
/// the id's lexicographic order, deterministically.
pub struct TenantRegistry {
    tenants: RwLock<BTreeMap<String, Arc<TenantEntry>>>,
}

impl Default for TenantRegistry {
    fn default() -> TenantRegistry {
        TenantRegistry::new()
    }
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> TenantRegistry {
        TenantRegistry {
            tenants: RwLock::new(BTreeMap::new()),
        }
    }

    /// Register a tenant with an in-memory model (startup path). If the
    /// tenant exists, this swaps the model like a reload.
    pub fn register(&self, name: &str, detector: Arc<Detector>) -> Arc<TenantEntry> {
        let mut tenants = self.tenants.write();
        match tenants.get(name) {
            Some(entry) => {
                let entry = Arc::clone(entry);
                drop(tenants);
                entry.swap(detector);
                entry
            }
            None => {
                let entry = TenantEntry::new(name, detector);
                tenants.insert(name.to_string(), Arc::clone(&entry));
                obs::gauge_set!("gateway.tenants", tenants.len() as i64);
                entry
            }
        }
    }

    /// Look up a tenant.
    pub fn get(&self, name: &str) -> Option<Arc<TenantEntry>> {
        self.tenants.read().get(name).cloned()
    }

    /// Load a model from the versioned CRC-checked store and make it the
    /// tenant's current version (creating the tenant if new). This does
    /// disk I/O and CRC verification — call it off the event loop.
    pub fn load_from_path(&self, name: &str, path: &Path) -> Result<LoadOutcome, StoreError> {
        let detector = Arc::new(ModelStore::load(path)?);
        let keys = detector.keys.len();
        let existing = self.get(name);
        match existing {
            Some(entry) => {
                let (version, _, previous_live) = entry.swap(detector);
                Ok(LoadOutcome {
                    tenant: name.to_string(),
                    version,
                    created: false,
                    previous_live,
                    keys,
                })
            }
            None => {
                self.register(name, detector);
                Ok(LoadOutcome {
                    tenant: name.to_string(),
                    version: 1,
                    created: true,
                    previous_live: 0,
                    keys,
                })
            }
        }
    }

    /// All tenants, in id order.
    pub fn entries(&self) -> Vec<Arc<TenantEntry>> {
        self.tenants.read().values().cloned().collect()
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomaly::Trainer;
    use spell::{Level, LogLine, Session};

    fn model(msg: &str) -> Arc<Detector> {
        let line = |m: &str| LogLine {
            ts_ms: 0,
            level: Level::Info,
            source: "X".into(),
            message: m.into(),
        };
        let mk = |id: &str| Session::new(id, vec![line(msg)]);
        Arc::new(Trainer::default().train(&[mk("a"), mk("b"), mk("c")]))
    }

    #[test]
    fn lease_pins_version_across_swap() {
        let reg = TenantRegistry::new();
        let t = reg.register("acme", model("alpha one two"));
        let lease = t.open_session();
        assert_eq!(lease.version(), 1);
        assert_eq!(t.current().live(), 1);

        let (new_v, old_v, old_live) = t.swap(model("beta one two"));
        assert_eq!((new_v, old_v, old_live), (2, 1, 1));
        // the lease still sees v1's detector; new sessions see v2
        assert_eq!(lease.version(), 1);
        let lease2 = t.open_session();
        assert_eq!(lease2.version(), 2);
        assert_eq!(t.reloads(), 1);

        // v1 drains when its last lease drops
        drop(lease);
        drop(lease2);
        assert_eq!(t.current().live(), 0);
    }

    #[test]
    fn load_from_path_roundtrip() {
        let dir = std::env::temp_dir().join("intellog-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("m-{}.ilm", std::process::id()));
        let det = model("gamma one two");
        ModelStore::save(&path, &det).unwrap();

        let reg = TenantRegistry::new();
        let out = reg.load_from_path("acme", &path).unwrap();
        assert!(out.created);
        assert_eq!(out.version, 1);
        let out2 = reg.load_from_path("acme", &path).unwrap();
        assert!(!out2.created);
        assert_eq!(out2.version, 2);
        assert_eq!(reg.get("acme").unwrap().reloads(), 1);
        assert!(reg
            .load_from_path("bad", Path::new("/nonexistent"))
            .is_err());
        assert_eq!(reg.len(), 1, "failed load must not create the tenant");
        std::fs::remove_file(&path).unwrap();
    }
}
