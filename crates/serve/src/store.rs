//! Versioned on-disk model store.
//!
//! A trained [`Detector`] is the unit of deployment: the CLI trains one,
//! writes it here, and `intellog serve` loads it read-only for the lifetime
//! of the process. Because a corrupt or mismatched model silently changes
//! every verdict the server emits, the store refuses anything it cannot
//! prove intact:
//!
//! ```text
//! INTELLOG-MODEL v<version> crc32 <8 hex> len <payload bytes>\n
//! <payload: the Detector as JSON>
//! ```
//!
//! The header line is ASCII so `head -1 model.ilm` tells an operator what
//! they are looking at; the CRC-32 (IEEE, as in zip/png) covers the whole
//! payload, and `len` catches truncation even when the cut lands on a
//! JSON-valid prefix. Loading checks magic → version → length → checksum →
//! JSON, in that order, and reports the first failure as a typed
//! [`StoreError`].

use anomaly::Detector;
use std::fmt;
use std::path::Path;

/// Current model format version. Bump on any incompatible change to the
/// serialised [`Detector`] layout.
pub const MODEL_FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "INTELLOG-MODEL";

/// Why a model file was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file could not be read or written.
    Io(String),
    /// The file does not start with the `INTELLOG-MODEL` magic — it is not
    /// a model store file at all (e.g. a bare JSON model from before the
    /// store existed).
    NotAModel,
    /// The header is present but malformed.
    BadHeader(String),
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The payload is shorter or longer than the header promised.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The payload bytes do not hash to the header checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the bytes on disk.
        found: u32,
    },
    /// Checksum passed but the payload did not deserialise (written by a
    /// build with a different `Detector` shape under the same version —
    /// a bug, but still refused cleanly).
    Parse(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "model store I/O error: {e}"),
            StoreError::NotAModel => {
                write!(f, "not an {MAGIC} file (missing magic header)")
            }
            StoreError::BadHeader(e) => write!(f, "malformed model header: {e}"),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "model format v{found} is not supported (this build reads v{expected}); retrain"
            ),
            StoreError::Truncated { expected, found } => write!(
                f,
                "model payload truncated: header promises {expected} bytes, file has {found}"
            ),
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "model payload corrupt: crc32 {found:08x} != recorded {expected:08x}"
            ),
            StoreError::Parse(e) => write!(f, "model payload does not deserialise: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected — the zip/png variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The versioned model store: save/load [`Detector`]s with integrity
/// checking.
pub struct ModelStore;

impl ModelStore {
    /// Serialise `detector` and atomically-ish write it to `path`
    /// (write to `path.tmp`, then rename). Returns the total file size.
    pub fn save(path: &Path, detector: &Detector) -> Result<usize, StoreError> {
        let payload =
            serde_json::to_string(detector).map_err(|e| StoreError::Parse(e.to_string()))?;
        let bytes = Self::encode(payload.as_bytes());
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)
            .map_err(|e| StoreError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
        Ok(bytes.len())
    }

    /// Frame a payload with the header (exposed for tests and tooling).
    pub fn encode(payload: &[u8]) -> Vec<u8> {
        let header = format!(
            "{MAGIC} v{MODEL_FORMAT_VERSION} crc32 {:08x} len {}\n",
            crc32(payload),
            payload.len()
        );
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(payload);
        bytes
    }

    /// Load a detector, refusing anything not provably intact.
    pub fn load(path: &Path) -> Result<Detector, StoreError> {
        let bytes =
            std::fs::read(path).map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
        let payload = Self::verify(&bytes)?;
        serde_json::from_str(
            std::str::from_utf8(payload).map_err(|e| StoreError::Parse(e.to_string()))?,
        )
        .map_err(|e| StoreError::Parse(e.to_string()))
    }

    /// Check framing and integrity, returning the payload slice.
    pub fn verify(bytes: &[u8]) -> Result<&[u8], StoreError> {
        if !bytes.starts_with(MAGIC.as_bytes()) {
            return Err(StoreError::NotAModel);
        }
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(StoreError::BadHeader("no newline after header".into()))?;
        let header = std::str::from_utf8(&bytes[..nl])
            .map_err(|_| StoreError::BadHeader("non-UTF-8 header".into()))?;
        // MAGIC v<u32> crc32 <hex> len <usize>
        let fields: Vec<&str> = header.split_ascii_whitespace().collect();
        if fields.len() != 6 || fields[0] != MAGIC || fields[2] != "crc32" || fields[4] != "len" {
            return Err(StoreError::BadHeader(format!(
                "unexpected shape: {header:?}"
            )));
        }
        let version: u32 = fields[1]
            .strip_prefix('v')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| StoreError::BadHeader(format!("bad version field {:?}", fields[1])))?;
        if version != MODEL_FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                found: version,
                expected: MODEL_FORMAT_VERSION,
            });
        }
        let expected_crc = u32::from_str_radix(fields[3], 16)
            .map_err(|_| StoreError::BadHeader(format!("bad crc field {:?}", fields[3])))?;
        let expected_len: usize = fields[5]
            .parse()
            .map_err(|_| StoreError::BadHeader(format!("bad len field {:?}", fields[5])))?;
        let payload = &bytes[nl + 1..];
        if payload.len() != expected_len {
            return Err(StoreError::Truncated {
                expected: expected_len,
                found: payload.len(),
            });
        }
        let found_crc = crc32(payload);
        if found_crc != expected_crc {
            return Err(StoreError::ChecksumMismatch {
                expected: expected_crc,
                found: found_crc,
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE reflected CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_verify_roundtrip() {
        let payload = br#"{"k":1}"#;
        let framed = ModelStore::encode(payload);
        assert_eq!(ModelStore::verify(&framed).unwrap(), payload);
    }

    #[test]
    fn verify_rejects_garbage_and_bad_headers() {
        assert_eq!(ModelStore::verify(b"{}"), Err(StoreError::NotAModel));
        assert!(matches!(
            ModelStore::verify(b"INTELLOG-MODEL v1 nonsense"),
            Err(StoreError::BadHeader(_))
        ));
        assert!(matches!(
            ModelStore::verify(b"INTELLOG-MODEL vX crc32 0 len 0\n"),
            Err(StoreError::BadHeader(_))
        ));
    }

    #[test]
    fn verify_rejects_wrong_version() {
        let mut framed = ModelStore::encode(b"{}");
        let s = String::from_utf8(framed.clone()).unwrap();
        framed = s.replacen("v1", "v9", 1).into_bytes();
        assert_eq!(
            ModelStore::verify(&framed),
            Err(StoreError::VersionMismatch {
                found: 9,
                expected: MODEL_FORMAT_VERSION
            })
        );
    }

    #[test]
    fn verify_rejects_truncation_and_bitflips() {
        let framed = ModelStore::encode(br#"{"key":"value"}"#);
        let cut = &framed[..framed.len() - 3];
        assert!(matches!(
            ModelStore::verify(cut),
            Err(StoreError::Truncated { .. })
        ));
        let mut flipped = framed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x20;
        assert!(matches!(
            ModelStore::verify(&flipped),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }
}
