//! A small line-protocol client, used by `intellog replay`, the serve
//! bench and the integration tests.

use crate::metrics::StatsSnapshot;
use anomaly::SessionReport;
use spell::LogLine;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// A connected client over the serve line protocol.
pub struct ServeClient {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connect to a running server.
    pub fn connect(addr: &str) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient {
            writer: BufWriter::with_capacity(1 << 16, stream),
            reader,
        })
    }

    /// Bind this connection's data verbs (`LOG`/`END`) to a tenant. The
    /// server routes to the default tenant until this is called.
    pub fn tenant(&mut self, id: &str) -> std::io::Result<()> {
        self.request(&format!("TENANT\t{id}")).map(|_| ())
    }

    /// Send one log line (fire-and-forget; buffered).
    pub fn log(&mut self, session: &str, line: &LogLine) -> std::io::Result<()> {
        let wire = crate::proto::render_log(session, line);
        writeln!(self.writer, "{wire}")
    }

    /// Close a session (fire-and-forget; buffered).
    pub fn end(&mut self, session: &str) -> std::io::Result<()> {
        writeln!(self.writer, "END\t{session}")
    }

    /// Flush buffered data lines to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    fn request(&mut self, verb: &str) -> std::io::Result<Vec<String>> {
        writeln!(self.writer, "{verb}")?;
        self.writer.flush()?;
        let mut status = String::new();
        self.reader.read_line(&mut status)?;
        let status = status.trim_end();
        let Some(count) = status
            .strip_prefix("OK ")
            .and_then(|n| n.parse::<usize>().ok())
        else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("server replied {status:?} to {verb}"),
            ));
        };
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            let mut l = String::new();
            self.reader.read_line(&mut l)?;
            lines.push(l.trim_end().to_string());
        }
        Ok(lines)
    }

    /// Round-trip a `PING`.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.request("PING").map(|_| ())
    }

    /// Fetch the server metrics snapshot.
    pub fn stats(&mut self) -> std::io::Result<StatsSnapshot> {
        let lines = self.request("STATS")?;
        let json = lines
            .first()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty STATS"))?;
        serde_json::from_str(json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Fetch the server metrics in Prometheus text exposition format
    /// (`METRICS` verb); returns the raw text, one line per series/sample.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        let lines = self.request("METRICS")?;
        let mut out = String::new();
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        Ok(out)
    }

    /// Fetch the newest `n` completed session reports.
    pub fn reports(&mut self, n: usize) -> std::io::Result<Vec<SessionReport>> {
        self.fetch_reports("REPORTS", n, None)
    }

    /// Fetch the newest `n` completed reports for one tenant.
    pub fn reports_for(&mut self, n: usize, tenant: &str) -> std::io::Result<Vec<SessionReport>> {
        self.fetch_reports("REPORTS", n, Some(tenant))
    }

    /// Fetch the newest `n` problematic session reports.
    pub fn anomalies(&mut self, n: usize) -> std::io::Result<Vec<SessionReport>> {
        self.fetch_reports("ANOMALIES", n, None)
    }

    /// Fetch the newest `n` problematic reports for one tenant.
    pub fn anomalies_for(&mut self, n: usize, tenant: &str) -> std::io::Result<Vec<SessionReport>> {
        self.fetch_reports("ANOMALIES", n, Some(tenant))
    }

    fn fetch_reports(
        &mut self,
        verb: &str,
        n: usize,
        tenant: Option<&str>,
    ) -> std::io::Result<Vec<SessionReport>> {
        let req = match tenant {
            Some(t) => format!("{verb}\t{n}\t{t}"),
            None => format!("{verb}\t{n}"),
        };
        self.request(&req)?
            .iter()
            .map(|l| {
                serde_json::from_str(l).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })
            })
            .collect()
    }

    /// Hot-load a model from `path` for `tenant` (created if new). Blocks
    /// until the background load completes; returns the result line
    /// (`LOADED\t<tenant>\t<version>\t<keys>\t<prev_live>`).
    pub fn load(&mut self, tenant: &str, path: &str) -> std::io::Result<String> {
        let lines = self.request(&format!("LOAD\t{tenant}\t{path}"))?;
        lines
            .into_iter()
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty LOAD reply"))
    }

    /// Add a shard worker; returns the new shard's index once the ring
    /// rebalance completed.
    pub fn add_shard(&mut self) -> std::io::Result<usize> {
        self.numeric_request("ADDSHARD")
    }

    /// Drain shard `index` under live load: its sessions are
    /// snapshot-moved to the remaining shards. Returns how many moved.
    pub fn drain_shard(&mut self, index: usize) -> std::io::Result<usize> {
        self.numeric_request(&format!("DRAINSHARD\t{index}"))
    }

    /// Drain every live session; returns how many were finished.
    pub fn drain(&mut self) -> std::io::Result<usize> {
        self.numeric_request("DRAIN")
    }

    /// Drain one tenant's live sessions; returns how many were finished.
    pub fn drain_tenant(&mut self, tenant: &str) -> std::io::Result<usize> {
        self.numeric_request(&format!("DRAIN\t{tenant}"))
    }

    /// Send a verb whose `OK <n>` reply carries a count, not a line batch.
    fn numeric_request(&mut self, verb: &str) -> std::io::Result<usize> {
        writeln!(self.writer, "{verb}")?;
        self.writer.flush()?;
        let mut status = String::new();
        self.reader.read_line(&mut status)?;
        status
            .trim_end()
            .strip_prefix("OK ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("server replied {:?} to {verb}", status.trim_end()),
                )
            })
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        writeln!(self.writer, "SHUTDOWN")?;
        self.writer.flush()?;
        let mut status = String::new();
        let _ = self.reader.read_line(&mut status);
        Ok(())
    }
}
