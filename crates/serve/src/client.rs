//! A small line-protocol client, used by `intellog replay`, the serve
//! bench and the integration tests.

use crate::metrics::StatsSnapshot;
use anomaly::SessionReport;
use spell::LogLine;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// A connected client over the serve line protocol.
pub struct ServeClient {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connect to a running server.
    pub fn connect(addr: &str) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient {
            writer: BufWriter::with_capacity(1 << 16, stream),
            reader,
        })
    }

    /// Send one log line (fire-and-forget; buffered).
    pub fn log(&mut self, session: &str, line: &LogLine) -> std::io::Result<()> {
        let wire = crate::server::render_log(session, line);
        writeln!(self.writer, "{wire}")
    }

    /// Close a session (fire-and-forget; buffered).
    pub fn end(&mut self, session: &str) -> std::io::Result<()> {
        writeln!(self.writer, "END\t{session}")
    }

    /// Flush buffered data lines to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    fn request(&mut self, verb: &str) -> std::io::Result<Vec<String>> {
        writeln!(self.writer, "{verb}")?;
        self.writer.flush()?;
        let mut status = String::new();
        self.reader.read_line(&mut status)?;
        let status = status.trim_end();
        let Some(count) = status
            .strip_prefix("OK ")
            .and_then(|n| n.parse::<usize>().ok())
        else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("server replied {status:?} to {verb}"),
            ));
        };
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            let mut l = String::new();
            self.reader.read_line(&mut l)?;
            lines.push(l.trim_end().to_string());
        }
        Ok(lines)
    }

    /// Round-trip a `PING`.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.request("PING").map(|_| ())
    }

    /// Fetch the server metrics snapshot.
    pub fn stats(&mut self) -> std::io::Result<StatsSnapshot> {
        let lines = self.request("STATS")?;
        let json = lines
            .first()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty STATS"))?;
        serde_json::from_str(json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Fetch the server metrics in Prometheus text exposition format
    /// (`METRICS` verb); returns the raw text, one line per series/sample.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        let lines = self.request("METRICS")?;
        let mut out = String::new();
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        Ok(out)
    }

    /// Fetch the newest `n` completed session reports.
    pub fn reports(&mut self, n: usize) -> std::io::Result<Vec<SessionReport>> {
        self.fetch_reports("REPORTS", n)
    }

    /// Fetch the newest `n` problematic session reports.
    pub fn anomalies(&mut self, n: usize) -> std::io::Result<Vec<SessionReport>> {
        self.fetch_reports("ANOMALIES", n)
    }

    fn fetch_reports(&mut self, verb: &str, n: usize) -> std::io::Result<Vec<SessionReport>> {
        self.request(&format!("{verb}\t{n}"))?
            .iter()
            .map(|l| {
                serde_json::from_str(l).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })
            })
            .collect()
    }

    /// Drain every live session; returns how many were finished.
    pub fn drain(&mut self) -> std::io::Result<usize> {
        writeln!(self.writer, "DRAIN")?;
        self.writer.flush()?;
        let mut status = String::new();
        self.reader.read_line(&mut status)?;
        status
            .trim_end()
            .strip_prefix("OK ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("server replied {:?} to DRAIN", status.trim_end()),
                )
            })
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        writeln!(self.writer, "SHUTDOWN")?;
        self.writer.flush()?;
        let mut status = String::new();
        let _ = self.reader.read_line(&mut status);
        Ok(())
    }
}
