//! The anomaly sink: where completed [`SessionReport`]s land.
//!
//! Every closed or evicted session produces exactly one report. The sink
//! keeps the most recent reports in a bounded ring buffer (served by the
//! `REPORTS` / `ANOMALIES` control verbs) and, when configured, appends
//! each *problematic* report as one JSON object per line to a JSONL file —
//! the same shape `intellog detect --json` prints, so offline and online
//! tooling share one format.

use anomaly::SessionReport;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::Path;
use sync::atomic::{AtomicU64, Ordering};
use sync::Mutex;

struct SinkInner {
    /// (tenant, report) — tenant-tagged so `REPORTS`/`ANOMALIES` can be
    /// filtered per tenant; the JSONL file keeps the plain
    /// `SessionReport` shape shared with `intellog detect --json`.
    ring: VecDeque<(String, SessionReport)>,
    file: Option<std::io::BufWriter<std::fs::File>>,
    anomalies_by_kind: BTreeMap<&'static str, u64>,
}

/// Bounded in-memory ring + optional JSONL file of session reports.
pub struct AnomalySink {
    inner: Mutex<SinkInner>,
    capacity: usize,
    completed: AtomicU64,
    problematic: AtomicU64,
}

impl AnomalySink {
    /// A sink retaining the last `capacity` reports in memory, appending
    /// problematic ones to `jsonl_path` if given.
    pub fn new(capacity: usize, jsonl_path: Option<&Path>) -> std::io::Result<AnomalySink> {
        let file = match jsonl_path {
            Some(p) => Some(std::io::BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)?,
            )),
            None => None,
        };
        Ok(AnomalySink {
            inner: Mutex::new(SinkInner {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                file,
                anomalies_by_kind: BTreeMap::new(),
            }),
            capacity: capacity.max(1),
            completed: AtomicU64::new(0),
            problematic: AtomicU64::new(0),
        })
    }

    /// Record one completed session for `tenant`.
    pub fn push(&self, tenant: &str, report: SessionReport) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        for a in &report.anomalies {
            *inner.anomalies_by_kind.entry(a.kind_name()).or_insert(0) += 1;
        }
        if report.is_problematic() {
            self.problematic.fetch_add(1, Ordering::Relaxed);
            if let Some(f) = inner.file.as_mut() {
                // One JSON object per line; flush per report so a tailing
                // operator (or the CI smoke test) sees it immediately.
                if let Ok(json) = serde_json::to_string(&report) {
                    let _ = writeln!(f, "{json}");
                    let _ = f.flush();
                }
            }
        }
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back((tenant.to_string(), report));
    }

    /// The newest `n` completed reports, oldest first, optionally only
    /// for one tenant.
    pub fn recent_reports(&self, n: usize, tenant: Option<&str>) -> Vec<SessionReport> {
        self.filtered(n, tenant, |_| true)
    }

    /// The newest `n` problematic reports, oldest first, optionally only
    /// for one tenant.
    pub fn recent_anomalous(&self, n: usize, tenant: Option<&str>) -> Vec<SessionReport> {
        self.filtered(n, tenant, SessionReport::is_problematic)
    }

    fn filtered(
        &self,
        n: usize,
        tenant: Option<&str>,
        keep: impl Fn(&SessionReport) -> bool,
    ) -> Vec<SessionReport> {
        let inner = self.inner.lock();
        let mut out: Vec<SessionReport> = inner
            .ring
            .iter()
            .rev()
            .filter(|(t, r)| tenant.is_none_or(|want| want == t.as_str()) && keep(r))
            .map(|(_, r)| r.clone())
            .take(n)
            .collect();
        out.reverse();
        out
    }

    /// Completed session count.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Problematic session count.
    pub fn problematic(&self) -> u64 {
        self.problematic.load(Ordering::Relaxed)
    }

    /// Anomaly counts by kind, for `STATS`.
    pub fn anomalies_by_kind(&self) -> BTreeMap<String, u64> {
        self.inner
            .lock()
            .anomalies_by_kind
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anomaly::Anomaly;

    fn report(id: &str, problematic: bool) -> SessionReport {
        SessionReport {
            session: id.into(),
            lines: 1,
            anomalies: if problematic {
                vec![Anomaly::MissingGroup {
                    group: "task".into(),
                }]
            } else {
                vec![]
            },
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let sink = AnomalySink::new(2, None).unwrap();
        sink.push("t0", report("a", false));
        sink.push("t0", report("b", true));
        sink.push("t0", report("c", false));
        let recent = sink.recent_reports(10, None);
        assert_eq!(
            recent
                .iter()
                .map(|r| r.session.as_str())
                .collect::<Vec<_>>(),
            ["b", "c"]
        );
        assert_eq!(sink.completed(), 3);
        assert_eq!(sink.problematic(), 1);
        assert_eq!(sink.recent_anomalous(10, None).len(), 1);
        assert_eq!(sink.anomalies_by_kind().get("missing-group"), Some(&1));
    }

    #[test]
    fn tenant_filter_separates_streams() {
        let sink = AnomalySink::new(8, None).unwrap();
        sink.push("acme", report("a1", true));
        sink.push("globex", report("g1", false));
        sink.push("acme", report("a2", false));
        let acme = sink.recent_reports(10, Some("acme"));
        assert_eq!(
            acme.iter().map(|r| r.session.as_str()).collect::<Vec<_>>(),
            ["a1", "a2"]
        );
        assert_eq!(sink.recent_reports(10, Some("globex")).len(), 1);
        assert_eq!(sink.recent_anomalous(10, Some("globex")).len(), 0);
        assert_eq!(sink.recent_anomalous(10, Some("acme")).len(), 1);
        assert_eq!(sink.recent_reports(10, Some("missing")).len(), 0);
    }

    #[test]
    fn jsonl_file_gets_problematic_reports_only() {
        let dir = std::env::temp_dir().join("intellog-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let sink = AnomalySink::new(8, Some(&path)).unwrap();
            sink.push("t0", report("clean", false));
            sink.push("t0", report("bad", true));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let parsed: SessionReport = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(parsed.session, "bad");
        std::fs::remove_file(&path).unwrap();
    }
}
