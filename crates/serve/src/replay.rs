//! `intellog replay` — a load generator that drives simulated dlasim
//! workloads through the serve socket and verifies the server's verdicts.
//!
//! The replayer renders each job's sessions, merges them into one
//! cluster-wide timeline ([`dlasim::GenJob::merged_timeline`] — the arrival
//! order a collector tailing every container would see), partitions the
//! sessions across `connections` concurrent sockets (each session's stream
//! stays on one socket, so per-session order is preserved), paces the lines
//! at a target rate, ENDs every session, drains the server, and then
//! compares the server's per-session reports against offline
//! [`Detector::detect_session`] on exactly the same sessions. With the
//! lossless `block` backpressure policy the two must be identical — that
//! equivalence is the subsystem's core correctness property (asserted in
//! `tests/loopback.rs` and in CI).

use crate::client::ServeClient;
use crate::metrics::StatsSnapshot;
use anomaly::{Detector, SessionReport};
use dlasim::{FaultKind, ForeignFormat, SystemKind, WorkloadGen};
use intellog_core::{sessions_from_foreign, sessions_from_job, IntelLog};
use spell::Session;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Which simulated system's workloads to replay.
    pub system: SystemKind,
    /// Number of jobs (each job is many container sessions).
    pub jobs: usize,
    /// Workload seed — the same seed always replays the same bytes.
    pub seed: u64,
    /// Cluster hosts for the simulated jobs.
    pub hosts: u32,
    /// Target ingest rate in lines/second; `None` sends at full speed.
    pub rate: Option<u64>,
    /// Inject this fault into the first job.
    pub fault: Option<FaultKind>,
    /// Compare server verdicts against offline detection.
    pub verify: bool,
    /// Concurrent sender connections. Sessions are partitioned across
    /// them (a session's lines all flow over one socket, preserving
    /// per-session order); >1 is what makes shard scaling visible instead
    /// of measuring single-driver saturation.
    pub connections: usize,
    /// Send traffic as this tenant (`TENANT` handshake) and scope the
    /// drain + report fetch to it; `None` uses the server default.
    pub tenant: Option<String>,
    /// Render the corpus in a foreign syntax and normalise it back through
    /// the matching `lognlp::format` adapter before sending — the
    /// `--format` ingestion path. Offline verification runs on the same
    /// adapted sessions, so verdict equivalence is checked end to end
    /// through the adapter. `None` replays the native structural path.
    pub adapter: Option<ForeignFormat>,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            system: SystemKind::Spark,
            jobs: 1,
            seed: 7,
            hosts: 8,
            rate: None,
            fault: None,
            verify: true,
            connections: 1,
            tenant: None,
            adapter: None,
        }
    }
}

/// What a replay run observed.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Sessions replayed.
    pub sessions: usize,
    /// Log lines sent.
    pub lines: usize,
    /// Wall-clock send duration (first line → drain ack), seconds.
    pub elapsed_s: f64,
    /// Achieved ingest rate.
    pub lines_per_s: f64,
    /// Problematic sessions according to the server.
    pub online_problematic: usize,
    /// Problematic sessions according to offline detection (only when
    /// verifying, else 0).
    pub offline_problematic: usize,
    /// Human-readable verdict mismatches (empty = exact agreement).
    pub mismatches: Vec<String>,
    /// Server metrics after the drain.
    pub stats: StatsSnapshot,
}

/// Generate the replay corpus deterministically from the seed: the same
/// config always replays the same bytes (session ids are prefixed with the
/// job index so multi-job replays never collide).
pub fn generate_jobs(cfg: &ReplayConfig) -> Vec<dlasim::GenJob> {
    let mut gen = WorkloadGen::new(cfg.seed, cfg.hosts);
    let mut jobs = Vec::new();
    for j in 0..cfg.jobs.max(1) {
        let job_cfg = gen.detection_config(cfg.system, j);
        let plan = match cfg.fault {
            Some(kind) if j == 0 => Some(gen.fault_plan(kind)),
            _ => None,
        };
        let mut job = dlasim::generate(&job_cfg, plan.as_ref());
        for s in &mut job.sessions {
            s.id = format!("j{j}-{}", s.id);
        }
        jobs.push(job);
    }
    jobs
}

/// One sender connection's share of the replay: its sessions' lines in
/// timeline order, then their ENDs.
struct SenderPlan {
    lines: Vec<(String, spell::LogLine)>,
    ends: Vec<String>,
}

/// Convert one job into the sessions that will be both sent and verified:
/// the structural path natively, or rendered foreign and normalised back
/// through the adapter when one is configured. Using the same conversion
/// for senders and the offline reference is what makes the verdict
/// comparison exact through the adapter.
fn job_sessions(job: &dlasim::GenJob, adapter: Option<ForeignFormat>) -> Vec<Session> {
    match adapter {
        Some(format) => sessions_from_foreign(job, format),
        None => sessions_from_job(job),
    }
}

/// Partition the replay corpus across `connections` senders. A session's
/// whole stream goes to exactly one sender (round-robin by session index),
/// so per-session line order is preserved no matter how the sockets
/// interleave at the server. Within one job, lines from all sessions are
/// interleaved into one cluster-wide timeline (stable sort by timestamp —
/// for the native path this reproduces `GenJob::merged_timeline` exactly).
fn plan_senders(session_jobs: &[Vec<Session>], connections: usize) -> Vec<SenderPlan> {
    let c = connections.max(1);
    let mut plans: Vec<SenderPlan> = (0..c)
        .map(|_| SenderPlan {
            lines: Vec::new(),
            ends: Vec::new(),
        })
        .collect();
    let mut session_index = 0usize;
    for sessions in session_jobs {
        let conn_of: Vec<usize> = sessions
            .iter()
            .map(|_| {
                let conn = session_index % c;
                session_index += 1;
                conn
            })
            .collect();
        let mut merged: Vec<(usize, &spell::LogLine)> = sessions
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.lines.iter().map(move |l| (i, l)))
            .collect();
        merged.sort_by_key(|(_, l)| l.ts_ms);
        for (i, line) in merged {
            plans[conn_of[i]]
                .lines
                .push((sessions[i].id.clone(), line.clone()));
        }
        for (i, s) in sessions.iter().enumerate() {
            plans[conn_of[i]].ends.push(s.id.clone());
        }
    }
    plans
}

/// Run one sender connection to completion (lines, then ENDs, flushed).
fn run_sender(
    addr: &str,
    tenant: Option<&str>,
    plan: SenderPlan,
    rate: Option<u64>,
) -> Result<(), String> {
    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    if let Some(t) = tenant {
        client.tenant(t).map_err(|e| format!("tenant: {e}"))?;
    }
    let start = Instant::now();
    let mut sent: u64 = 0;
    for (session, line) in &plan.lines {
        client
            .log(session, line)
            .map_err(|e| format!("send: {e}"))?;
        sent += 1;
        if let Some(rate) = rate.filter(|r| *r > 0) {
            if sent.is_multiple_of(64) {
                client.flush().map_err(|e| format!("flush: {e}"))?;
                let due = Duration::from_secs_f64(sent as f64 / rate as f64);
                let elapsed = start.elapsed();
                if due > elapsed {
                    sync::thread::sleep(due - elapsed);
                }
            }
        }
    }
    for s in &plan.ends {
        client.end(s).map_err(|e| format!("end: {e}"))?;
    }
    // Barrier: the PING reply is only generated once every preceding line
    // on this connection has been parsed and routed, so a joined sender
    // means its traffic is in the server — a later DRAIN cannot overtake
    // bytes still buffered in the kernel or unread by the event loop.
    client.ping().map_err(|e| format!("final ping: {e}"))
}

/// Drive a replay against a running server.
pub fn run_replay(
    addr: &str,
    detector: &Detector,
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, String> {
    let jobs = generate_jobs(cfg);
    let session_jobs: Vec<Vec<Session>> =
        jobs.iter().map(|j| job_sessions(j, cfg.adapter)).collect();
    let offline_sessions: Vec<Session> = session_jobs.iter().flatten().cloned().collect();
    let total_lines: usize = offline_sessions.iter().map(|s| s.len()).sum();
    let connections = cfg.connections.max(1);
    let per_conn_rate = cfg.rate.map(|r| (r / connections as u64).max(1));

    let mut client = ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;
    if let Some(t) = &cfg.tenant {
        client.tenant(t).map_err(|e| format!("tenant: {e}"))?;
    }

    let mut plans = plan_senders(&session_jobs, connections);
    let start = Instant::now();
    // N−1 sender threads; the last plan is sent from this thread so a
    // single-connection replay spawns nothing.
    let mut handles = Vec::new();
    let last_plan = plans.pop().ok_or("no sender plan")?;
    for (i, plan) in plans.into_iter().enumerate() {
        let addr = addr.to_string();
        let tenant = cfg.tenant.clone();
        let handle = sync::thread::Builder::new()
            .name(format!("intellog-replay-{i}"))
            .spawn(move || run_sender(&addr, tenant.as_deref(), plan, per_conn_rate))
            .map_err(|e| format!("spawn sender {i}: {e}"))?;
        handles.push(handle);
    }
    run_sender(addr, cfg.tenant.as_deref(), last_plan, per_conn_rate)?;
    for h in handles {
        h.join().map_err(|_| "sender thread panicked")??;
    }
    let drained = match &cfg.tenant {
        Some(t) => client.drain_tenant(t),
        None => client.drain(),
    }
    .map_err(|e| format!("drain: {e}"))?;
    let elapsed_s = start.elapsed().as_secs_f64();
    let _ = drained; // sessions already ENDed count as closed, not drained

    let online: Vec<SessionReport> = match &cfg.tenant {
        Some(t) => client.reports_for(offline_sessions.len() * 2, t),
        None => client.reports(offline_sessions.len() * 2),
    }
    .map_err(|e| format!("reports: {e}"))?;
    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;

    let by_id: BTreeMap<&str, &SessionReport> =
        online.iter().map(|r| (r.session.as_str(), r)).collect();
    let online_problematic = online.iter().filter(|r| r.is_problematic()).count();

    let mut mismatches = Vec::new();
    let mut offline_problematic = 0;
    if cfg.verify {
        // offline reference: the exact same sessions through the batch
        // detector (rayon-parallel across sessions)
        let il = IntelLog::from_detector(detector.clone());
        let offline = il.detect_job(&offline_sessions);
        offline_problematic = offline.problematic_count();
        for report in &offline.sessions {
            match by_id.get(report.session.as_str()) {
                None => mismatches.push(format!("session {}: no server report", report.session)),
                Some(served) => {
                    if served.anomalies != report.anomalies {
                        mismatches.push(format!(
                            "session {}: server saw {} anomalies, offline {} — server {:?} vs offline {:?}",
                            report.session,
                            served.anomalies.len(),
                            report.anomalies.len(),
                            served.anomalies,
                            report.anomalies,
                        ));
                    }
                }
            }
        }
        if online.len() != offline_sessions.len() {
            mismatches.push(format!(
                "server returned {} reports for {} sessions (idle-timeout eviction mid-replay?)",
                online.len(),
                offline_sessions.len()
            ));
        }
    }

    Ok(ReplayOutcome {
        sessions: offline_sessions.len(),
        lines: total_lines,
        elapsed_s,
        lines_per_s: total_lines as f64 / elapsed_s.max(1e-9),
        online_problematic,
        offline_problematic,
        mismatches,
        stats,
    })
}
