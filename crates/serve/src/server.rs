//! The TCP ingestion front end and control plane.
//!
//! The protocol is line-framed, tab-separated ASCII — trivially scriptable
//! with `nc` and fast to parse:
//!
//! ```text
//! LOG\t<session>\t<ts_ms>\t<level>\t<source>\t<message>   fire-and-forget
//! END\t<session>                                          fire-and-forget
//! PING                       → OK 0
//! STATS                      → OK 1  + one StatsSnapshot JSON line
//! METRICS                    → OK <k> + k Prometheus text-format lines
//! REPORTS\t<n>               → OK <k> + k SessionReport JSON lines
//! ANOMALIES\t<n>             → OK <k> + k problematic SessionReport lines
//! DRAIN                      → OK <finished sessions>  (after queues empty)
//! SHUTDOWN                   → OK 0, then the server drains and exits
//! ```
//!
//! Data lines carry no reply so a client can saturate the socket; TCP flow
//! control plus the `block` backpressure policy make the path lossless,
//! while the `drop-*` policies shed load at the shard queues and count
//! every shed line. Routing is `fnv1a(session) % shards`, so one session is
//! always handled by one shard thread (no cross-thread session state).

use crate::metrics::{ShardMetrics, StatsSnapshot};
use crate::queue::{Backpressure, PushOutcome, ShardQueue};
use crate::shard::{shard_of, ShardHandle, ShardMsg};
use crate::sink::AnomalySink;
use anomaly::Detector;
use spell::{Level, LogLine};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;
use sync::atomic::{AtomicBool, AtomicU64, Ordering};
use sync::{mpsc, Arc};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of shard worker threads.
    pub shards: usize,
    /// Per-shard queue capacity (data messages).
    pub queue_capacity: usize,
    /// What to do when a shard queue is full.
    pub backpressure: Backpressure,
    /// Sessions idle longer than this are evicted (final report emitted).
    pub idle_timeout: Duration,
    /// How many completed reports the in-memory ring retains.
    pub ring_capacity: usize,
    /// Optional JSONL file receiving every problematic report.
    pub sink_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
            idle_timeout: Duration::from_secs(30),
            ring_capacity: 4096,
            sink_path: None,
        }
    }
}

/// State shared by the acceptor and every connection handler.
struct ServerState {
    shards: Vec<(Arc<ShardQueue<ShardMsg>>, Arc<ShardMetrics>)>,
    sink: Arc<AnomalySink>,
    backpressure: Backpressure,
    shutdown: AtomicBool,
    protocol_errors: AtomicU64,
    spawn_errors: AtomicU64,
    addr: SocketAddr,
}

impl ServerState {
    fn stats(&self) -> StatsSnapshot {
        let per_shard: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, (q, m))| {
                let mut s = m.snapshot(i, q.len());
                // the queue owns the authoritative drop counter
                s.dropped = q.dropped();
                s
            })
            .collect();
        StatsSnapshot {
            shards: per_shard.len(),
            backpressure: self.backpressure.name().to_string(),
            ingested: per_shard.iter().map(|s| s.ingested).sum(),
            dropped: per_shard.iter().map(|s| s.dropped).sum(),
            online_anomalies: per_shard.iter().map(|s| s.online_anomalies).sum(),
            sessions_live: per_shard.iter().map(|s| s.sessions_live).sum(),
            reports_completed: self.sink.completed(),
            reports_problematic: self.sink.problematic(),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            anomalies_by_kind: self.sink.anomalies_by_kind(),
            per_shard,
        }
    }

    /// Render server state (plus the process-wide obs registry) in
    /// Prometheus text exposition format, for the `METRICS` verb.
    fn render_metrics(&self) -> String {
        use std::fmt::Write;
        let stats = self.stats();
        let mut out = String::new();
        let mut counter = |name: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter("intellog_serve_ingested_total", stats.ingested);
        counter("intellog_serve_dropped_total", stats.dropped);
        counter(
            "intellog_serve_online_anomalies_total",
            stats.online_anomalies,
        );
        counter(
            "intellog_serve_reports_completed_total",
            stats.reports_completed,
        );
        counter(
            "intellog_serve_reports_problematic_total",
            stats.reports_problematic,
        );
        counter(
            "intellog_serve_protocol_errors_total",
            stats.protocol_errors,
        );
        counter(
            "intellog_serve_spawn_errors_total",
            self.spawn_errors.load(Ordering::Relaxed),
        );
        let _ = writeln!(out, "# TYPE intellog_serve_sessions_live gauge");
        let _ = writeln!(out, "intellog_serve_sessions_live {}", stats.sessions_live);
        let _ = writeln!(out, "# TYPE intellog_serve_queue_len gauge");
        for s in &stats.per_shard {
            let _ = writeln!(
                out,
                "intellog_serve_queue_len{{shard=\"{}\"}} {}",
                s.shard, s.queue_len
            );
        }
        let _ = writeln!(out, "# TYPE intellog_serve_anomalies_by_kind counter");
        for (kind, n) in &stats.anomalies_by_kind {
            let _ = writeln!(
                out,
                "intellog_serve_anomalies_by_kind{{kind=\"{kind}\"}} {n}"
            );
        }
        // Per-shard feed-latency histograms, in the same exposition shape
        // the obs registry uses.
        for (i, (_, m)) in self.shards.iter().enumerate() {
            let _ = writeln!(out, "# TYPE intellog_serve_feed_latency_us histogram");
            let mut cumulative = 0u64;
            for (b, c) in m.feed_latency.bucket_counts().iter().enumerate() {
                cumulative += *c;
                if *c > 0 {
                    let le = 1u64 << (b + 1);
                    let _ = writeln!(
                        out,
                        "intellog_serve_feed_latency_us_bucket{{shard=\"{i}\",le=\"{le}\"}} {cumulative}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "intellog_serve_feed_latency_us_bucket{{shard=\"{i}\",le=\"+Inf\"}} {cumulative}"
            );
            let _ = writeln!(
                out,
                "intellog_serve_feed_latency_us_sum{{shard=\"{i}\"}} {}",
                m.feed_latency.sum_us()
            );
            let _ = writeln!(
                out,
                "intellog_serve_feed_latency_us_count{{shard=\"{i}\"}} {cumulative}"
            );
        }
        // Pipeline-stage metrics (spell/lognlp/extract/hwgraph/anomaly)
        // recorded by the gated macros while detectors ran in this process.
        out.push_str(&obs::render_prometheus());
        out
    }

    /// Send `Drain` to every shard and wait until each acks. Because the
    /// drain joins the back of each queue, all previously enqueued lines
    /// are processed before sessions are finished.
    fn drain(&self) -> usize {
        let (tx, rx) = mpsc::channel();
        for (q, _) in &self.shards {
            q.push_control(ShardMsg::Drain { ack: tx.clone() });
        }
        drop(tx);
        rx.iter().sum()
    }
}

/// A bound, running ingestion server.
pub struct Server {
    listener: TcpListener,
    shards: Vec<ShardHandle>,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the listener and start the shard workers. The model is shared
    /// immutably across all shards.
    pub fn bind(config: &ServeConfig, detector: Arc<Detector>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let sink = Arc::new(AnomalySink::new(
            config.ring_capacity,
            config.sink_path.as_deref(),
        )?);
        let mut handles = Vec::new();
        let mut shared = Vec::new();
        for i in 0..config.shards.max(1) {
            let queue = Arc::new(ShardQueue::new(config.queue_capacity, config.backpressure));
            let metrics = Arc::new(ShardMetrics::default());
            shared.push((Arc::clone(&queue), Arc::clone(&metrics)));
            handles.push(ShardHandle::spawn(
                i,
                Arc::clone(&detector),
                queue,
                metrics,
                Arc::clone(&sink),
                config.idle_timeout,
            )?);
        }
        Ok(Server {
            listener,
            shards: handles,
            state: Arc::new(ServerState {
                shards: shared,
                sink,
                backpressure: config.backpressure,
                shutdown: AtomicBool::new(false),
                protocol_errors: AtomicU64::new(0),
                spawn_errors: AtomicU64::new(0),
                addr,
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Accept connections until a `SHUTDOWN` request arrives, then drain
    /// the shards, join the workers and return.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    let state = Arc::clone(&self.state);
                    // A failed spawn (thread exhaustion) must not take the
                    // whole acceptor down: drop this connection, count it,
                    // and keep serving the ones we already have.
                    if let Err(e) = sync::thread::Builder::new()
                        .name("intellog-conn".into())
                        .spawn(move || handle_connection(s, &state))
                    {
                        self.state.spawn_errors.fetch_add(1, Ordering::Relaxed);
                        obs::add!("serve.conn_spawn_errors", 1);
                        eprintln!("intellog-serve: dropping connection, spawn failed: {e}");
                    }
                }
                Err(e) => {
                    if self.state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(e);
                }
            }
        }
        // graceful drain: stop admitting, flush what is queued, join.
        for (q, _) in &self.state.shards {
            q.push_control(ShardMsg::Shutdown);
            q.close();
        }
        for h in self.shards {
            h.join();
        }
        Ok(())
    }

    /// Run on a background thread: returns the bound address and the join
    /// handle (used by tests, `intellog replay --spawn`, and the bench).
    /// Fails only if the acceptor thread itself cannot be spawned.
    pub fn spawn(
        self,
    ) -> std::io::Result<(SocketAddr, sync::thread::JoinHandle<std::io::Result<()>>)> {
        let addr = self.local_addr();
        let join = sync::thread::Builder::new()
            .name("intellog-serve".into())
            .spawn(move || self.run())?;
        Ok((addr, join))
    }
}

fn handle_connection(stream: TcpStream, state: &ServerState) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::with_capacity(1 << 16, stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.is_empty() {
            continue;
        }
        if !handle_request(&line, state, &mut writer) {
            break;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Handle one request line; `false` ends the connection (I/O error or
/// shutdown).
fn handle_request(line: &str, state: &ServerState, writer: &mut TcpStream) -> bool {
    let verb = line.split('\t').next().unwrap_or("");
    match verb {
        "LOG" => {
            match parse_log(line) {
                Some((session, log_line)) => {
                    let shard = shard_of(&session, state.shards.len());
                    // fire-and-forget; drops are counted by the queue
                    let _: PushOutcome = state.shards[shard].0.push(ShardMsg::Line {
                        session,
                        line: log_line,
                        enqueued: std::time::Instant::now(),
                    });
                }
                None => {
                    state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            true
        }
        "END" => {
            match line.split('\t').nth(1).filter(|s| !s.is_empty()) {
                Some(session) => {
                    let shard = shard_of(session, state.shards.len());
                    state.shards[shard].0.push_control(ShardMsg::End {
                        session: session.to_string(),
                    });
                }
                None => {
                    state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            true
        }
        "PING" => writeln!(writer, "OK 0").is_ok(),
        "METRICS" => {
            let text = state.render_metrics();
            let n = text.lines().count();
            if writeln!(writer, "OK {n}").is_err() {
                return false;
            }
            writer.write_all(text.as_bytes()).is_ok()
        }
        "STATS" => {
            let json = serde_json::to_string(&state.stats()).unwrap_or_else(|_| "{}".into());
            writeln!(writer, "OK 1\n{json}").is_ok()
        }
        "REPORTS" | "ANOMALIES" => {
            let n = line
                .split('\t')
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(usize::MAX);
            let reports = if verb == "REPORTS" {
                state.sink.recent_reports(n)
            } else {
                state.sink.recent_anomalous(n)
            };
            if writeln!(writer, "OK {}", reports.len()).is_err() {
                return false;
            }
            for r in &reports {
                let json = serde_json::to_string(r).unwrap_or_else(|_| "{}".into());
                if writeln!(writer, "{json}").is_err() {
                    return false;
                }
            }
            true
        }
        "DRAIN" => {
            let n = state.drain();
            writeln!(writer, "OK {n}").is_ok()
        }
        "SHUTDOWN" => {
            let _ = state.drain();
            state.shutdown.store(true, Ordering::SeqCst);
            let _ = writeln!(writer, "OK 0");
            // wake the acceptor so it observes the flag
            let _ = TcpStream::connect(state.addr);
            false
        }
        other => {
            state.protocol_errors.fetch_add(1, Ordering::Relaxed);
            writeln!(writer, "ERR unknown verb {other:?}").is_ok()
        }
    }
}

/// Parse `LOG\t<session>\t<ts_ms>\t<level>\t<source>\t<message>`; the
/// message is everything after the fifth tab (tabs inside it survive).
fn parse_log(line: &str) -> Option<(String, LogLine)> {
    let mut fields = line.splitn(6, '\t');
    let _verb = fields.next()?;
    let session = fields.next()?;
    if session.is_empty() {
        return None;
    }
    let ts_ms: u64 = fields.next()?.parse().ok()?;
    let level = Level::parse(fields.next()?)?;
    let source = fields.next()?;
    let message = fields.next()?;
    Some((
        session.to_string(),
        LogLine {
            ts_ms,
            level,
            source: source.to_string(),
            message: message.to_string(),
        },
    ))
}

/// Render the `LOG` wire line for a structured log line (the inverse of
/// [`parse_log`], used by the client and the replay generator).
pub fn render_log(session: &str, line: &LogLine) -> String {
    format!(
        "LOG\t{session}\t{}\t{}\t{}\t{}",
        line.ts_ms,
        line.level.as_str(),
        line.source,
        line.message
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_line_roundtrips_through_wire_format() {
        let l = LogLine {
            ts_ms: 1234,
            level: Level::Warn,
            source: "BlockManager".into(),
            message: "spill 1 written to /tmp/x\twith a tab".into(),
        };
        let wire = render_log("container_01", &l);
        let (session, parsed) = parse_log(&wire).expect("parse");
        assert_eq!(session, "container_01");
        assert_eq!(parsed, l);
    }

    #[test]
    fn malformed_log_lines_are_rejected() {
        assert!(parse_log("LOG\t\t0\tINFO\tX\tmsg").is_none()); // empty session
        assert!(parse_log("LOG\ts\tnotanum\tINFO\tX\tmsg").is_none());
        assert!(parse_log("LOG\ts\t0\tLOUD\tX\tmsg").is_none());
        assert!(parse_log("LOG\ts\t0\tINFO\tX").is_none()); // missing message
    }
}
