//! Property tests for the consistent-hash ring: adding or draining a shard
//! moves only the sessions it must — in expectation K/N of K sessions for
//! N shards — and never strands a session on a dead shard. Key strategies
//! deliberately include the near-identical `container_00000042`-style ids
//! real workloads produce (a regression guard for hash clustering: FNV-1a
//! alone leaves their high bits equal, collapsing the ring to one shard).

use intellog_serve::{session_key, Ring, DEFAULT_VNODES};
use proptest::prelude::*;
use std::collections::HashSet;

/// Session keys in the shapes replay traffic actually has: container ids
/// with long shared prefixes, plus free-form names.
fn keys_strategy() -> impl Strategy<Value = Vec<String>> {
    let container = ("[a-z]{2,8}", 0u32..4, 0u32..200)
        .prop_map(|(t, j, c)| session_key(&t, &format!("j{j}-container_{c:08}")));
    let freeform = ("[a-z]{2,8}", "[a-zA-Z0-9_-]{1,24}").prop_map(|(t, s)| session_key(&t, &s));
    prop::collection::vec(prop_oneof![container, freeform], 50..400).prop_map(|mut v| {
        v.sort();
        v.dedup();
        v
    })
}

/// Live shard index sets of size 2..=8 drawn from a sparse id space (ids
/// stay stable across drains, so they need not be contiguous).
fn shards_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..16, 2..9).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        if v.len() < 2 {
            v = vec![0, 1]; // degenerate draw: fall back to a minimal pair
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding a shard steals sessions only for itself, and no more than a
    /// slack-adjusted K/N share of them.
    #[test]
    fn add_moves_at_most_a_share_and_only_to_the_new_shard(
        keys in keys_strategy(),
        shards in shards_strategy(),
    ) {
        let new = (0usize..16).find(|i| !shards.contains(i)).unwrap_or(16);
        let before = Ring::new(&shards, DEFAULT_VNODES);
        let after = before.with_shard(new);

        let mut moved = 0usize;
        for k in &keys {
            let (a, b) = (before.owner(k), after.owner(k));
            if a != b {
                prop_assert_eq!(b, new, "a moved session must land on the new shard");
                moved += 1;
            }
        }
        // expectation K/(N+1); vnode placement is random, so allow 3x
        // slack plus an absolute floor for tiny K
        let n_after = shards.len() + 1;
        let bound = (3 * keys.len()) / n_after + 8;
        prop_assert!(
            moved <= bound,
            "add moved {moved} of {} sessions across {n_after} shards (bound {bound})",
            keys.len()
        );
    }

    /// Draining a shard moves exactly its own sessions, spread over the
    /// survivors — nobody else's session changes owner.
    #[test]
    fn drain_moves_only_the_drained_shards_sessions(
        keys in keys_strategy(),
        shards in shards_strategy(),
    ) {
        let drained = shards[0];
        let before = Ring::new(&shards, DEFAULT_VNODES);
        let after = before.without_shard(drained);

        for k in &keys {
            let (a, b) = (before.owner(k), after.owner(k));
            if a == drained {
                prop_assert_ne!(b, drained, "drained shard must own nothing");
            } else {
                prop_assert_eq!(a, b, "survivors' sessions must not move");
            }
        }
    }

    /// Every key routes to a live shard, deterministically, regardless of
    /// the order shards were listed in.
    #[test]
    fn owner_is_total_deterministic_and_order_independent(
        keys in keys_strategy(),
        shards in shards_strategy(),
    ) {
        let ring = Ring::new(&shards, DEFAULT_VNODES);
        let mut reversed = shards.clone();
        reversed.reverse();
        let ring2 = Ring::new(&reversed, DEFAULT_VNODES);
        let live: HashSet<usize> = shards.iter().copied().collect();
        for k in &keys {
            let o = ring.owner(k);
            prop_assert!(live.contains(&o), "owner {o} is not a live shard");
            prop_assert_eq!(o, ring2.owner(k), "construction order changed routing");
        }
    }

    /// An add followed by draining the same shard restores the original
    /// routing exactly (rings are values; the round trip is identity).
    #[test]
    fn add_then_drain_is_identity(
        keys in keys_strategy(),
        shards in shards_strategy(),
    ) {
        let new = (0usize..16).find(|i| !shards.contains(i)).unwrap_or(16);
        let before = Ring::new(&shards, DEFAULT_VNODES);
        let round = before.with_shard(new).without_shard(new);
        prop_assert_eq!(&before, &round);
        for k in &keys {
            prop_assert_eq!(before.owner(k), round.owner(k));
        }
    }
}
