//! Model-store integrity tests: save→load round-trips exactly, and every
//! corruption mode is rejected with the right typed error.

use anomaly::{Detector, Trainer};
use intellog_serve::{ModelStore, StoreError, MODEL_FORMAT_VERSION};
use spell::{Level, LogLine, Session};
use std::path::PathBuf;

fn line(ts: u64, msg: &str) -> LogLine {
    LogLine {
        ts_ms: ts,
        level: Level::Info,
        source: "X".into(),
        message: msg.into(),
    }
}

fn trained() -> Detector {
    let mk = |id: &str, host: &str, k: u32| {
        Session::new(
            id,
            vec![
                line(0, &format!("Registering block manager endpoint on {host}")),
                line(10, &format!("Starting task {k} in stage 0")),
                line(
                    20,
                    &format!("Finished task {k} in stage 0 and sent 9 bytes to driver"),
                ),
                line(30, "Shutdown hook called"),
            ],
        )
    };
    Trainer::default().train(&[
        mk("c0", "host1", 1),
        mk("c1", "host2", 2),
        mk("c2", "host1", 3),
    ])
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("intellog-store-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}.ilm", std::process::id()))
}

#[test]
fn save_load_is_byte_identical_reserialized() {
    let detector = trained();
    let path = tmp_path("roundtrip");
    ModelStore::save(&path, &detector).unwrap();
    let loaded = ModelStore::load(&path).unwrap();
    // the loaded model re-serialises to the exact bytes of the original
    assert_eq!(
        serde_json::to_string(&loaded).unwrap(),
        serde_json::to_string(&detector).unwrap()
    );
    // and saving it again produces a byte-identical file
    let path2 = tmp_path("roundtrip2");
    ModelStore::save(&path2, &loaded).unwrap();
    assert_eq!(
        std::fs::read(&path).unwrap(),
        std::fs::read(&path2).unwrap()
    );
    // behaviourally identical, too
    let probe = Session::new(
        "probe",
        vec![
            line(0, "Registering block manager endpoint on host9"),
            line(5, "Starting task 7 in stage 0"),
        ],
    );
    assert_eq!(
        loaded.detect_session(&probe),
        detector.detect_session(&probe)
    );
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&path2).unwrap();
}

#[test]
fn truncated_model_is_rejected() {
    let path = tmp_path("truncated");
    ModelStore::save(&path, &trained()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
    match ModelStore::load(&path) {
        Err(StoreError::Truncated { expected, found }) => {
            assert_eq!(found + 40, expected);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bitflipped_model_is_rejected() {
    let path = tmp_path("bitflip");
    ModelStore::save(&path, &trained()).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // flip one bit deep in the payload (past the header line)
    let idx = bytes.len() / 2;
    bytes[idx] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        ModelStore::load(&path),
        Err(StoreError::ChecksumMismatch { .. })
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn wrong_version_header_is_rejected() {
    let path = tmp_path("version");
    ModelStore::save(&path, &trained()).unwrap();
    let text = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
    let bumped = text.replacen(
        &format!("v{MODEL_FORMAT_VERSION} "),
        &format!("v{} ", MODEL_FORMAT_VERSION + 1),
        1,
    );
    std::fs::write(&path, bumped).unwrap();
    match ModelStore::load(&path) {
        Err(StoreError::VersionMismatch { found, expected }) => {
            assert_eq!(found, MODEL_FORMAT_VERSION + 1);
            assert_eq!(expected, MODEL_FORMAT_VERSION);
        }
        Err(other) => panic!("expected VersionMismatch, got {other:?}"),
        Ok(_) => panic!("wrong-version model must be refused"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn legacy_bare_json_is_refused_as_not_a_model() {
    let path = tmp_path("legacy");
    let json = serde_json::to_string(&trained()).unwrap();
    std::fs::write(&path, json).unwrap();
    assert!(matches!(
        ModelStore::load(&path),
        Err(StoreError::NotAModel)
    ));
    std::fs::remove_file(&path).unwrap();
}
