//! Reconstruct the Spark workflow as a HW-graph (paper Fig. 8).
//!
//! Generates a training corpus of Spark jobs on the simulated cluster,
//! trains IntelLog, and prints the hierarchical workflow: entity groups
//! (critical ones starred), their subroutines keyed by identifier-type
//! signatures, and the critical Intel Keys inside each subroutine.
//!
//! Run with: `cargo run --example spark_workflow`

use intellog::core::{sessions_from_job, IntelLog};
use intellog::dlasim::{self, SystemKind, WorkloadGen};
use intellog::spell::Session;

fn main() {
    // Train on a mix of HiBench-style Spark jobs (paper §6.1 submits 100;
    // a handful suffices for the workflow structure).
    let mut gen = WorkloadGen::new(2024, 8);
    let mut sessions: Vec<Session> = Vec::new();
    for j in 0..8 {
        let cfg = gen.training_config(SystemKind::Spark);
        let job = dlasim::generate(&cfg, None);
        for (i, mut s) in sessions_from_job(&job).into_iter().enumerate() {
            s.id = format!("job{j}_{i}_{}", s.id);
            sessions.push(s);
        }
    }
    println!("training on {} sessions…", sessions.len());
    let il = IntelLog::train(&sessions);

    let stats = &il.graph().stats;
    println!("\n=== HW-graph statistics (cf. paper Table 5) ===");
    println!("avg session length:    {:.1}", stats.avg_session_len);
    println!(
        "entity groups:         {} (critical: {})",
        stats.groups_all, stats.groups_critical
    );
    println!(
        "subroutine length:     max {} / avg {:.1} / avg critical {:.1}",
        stats.sub_len_max, stats.sub_len_avg_all, stats.sub_len_avg_crit
    );

    println!("\n=== Spark HW-graph (cf. paper Fig. 8; * = critical group, ! = critical key) ===");
    print!("{}", il.render_graph());
}
