//! Querying formatted semantic knowledge (paper §3.3, §6.4).
//!
//! Intel Messages are key-value structured and "naturally fit in the
//! storage structure of time series databases". This example lifts a
//! simulated Tez job into an IntelStore and runs the query operators the
//! paper demonstrates: GroupBy identifier, GroupBy locality, entity
//! filters, and JSON export for external tools (JSONQuery).
//!
//! Run with: `cargo run --example query_intel`

use intellog::dlasim::{self, JobConfig, SystemKind};
use intellog::extract::{IntelExtractor, IntelMessage, IntelStore};
use intellog::spell::SpellParser;

fn main() {
    let cfg = JobConfig {
        system: SystemKind::Tez,
        workload: "query8".into(),
        input_gb: 5,
        mem_mb: 1024,
        cores: 1,
        executors: 2,
        hosts: 4,
        seed: 55,
    };
    let job = dlasim::generate(&cfg, None);

    // Pipeline stages 1–2: keys, then Intel Messages into the store.
    let mut parser = SpellParser::default();
    let mut parsed = Vec::new();
    for s in &job.sessions {
        for l in &s.lines {
            let out = parser.parse_message(&l.message);
            parsed.push((s.id.clone(), l.ts_ms, out));
        }
    }
    let extractor = IntelExtractor::new();
    let keys: Vec<_> = parser.keys().iter().map(|k| extractor.build(k)).collect();
    let mut store = IntelStore::new();
    for (sess, ts, out) in parsed {
        store.push(IntelMessage::instantiate(
            &keys[out.key_id.0 as usize],
            &out.tokens,
            sess,
            ts,
        ));
    }
    println!(
        "store holds {} Intel Messages over {} keys",
        store.len(),
        keys.len()
    );

    println!("\n=== GroupBy identifier (first 8 groups) ===");
    for (id, msgs) in store.group_by_identifier().into_iter().take(8) {
        println!("  {id}: {} messages", msgs.len());
    }

    println!("\n=== filter: entity 'vertex' ===");
    for m in store.filter_entity("vertex").into_iter().take(5) {
        println!("  [{}] {}", m.session, m.text);
    }

    println!("\n=== GroupBy session ===");
    for (sess, msgs) in store.group_by_session().into_iter().take(5) {
        println!("  {sess}: {} messages", msgs.len());
    }

    // JSON export: queryable with external JSON tools (paper §5).
    let json = store.to_json();
    println!(
        "\nJSON export: {} bytes (first 200: {}…)",
        json.len(),
        &json[..200.min(json.len())]
    );
}
