//! Quickstart: from raw log lines to Intel Keys.
//!
//! Reproduces the paper's Figure 1 walkthrough: the three-message fetcher
//! subroutine from MapReduce is parsed into log keys, and each key is
//! transformed into an Intel Key with entities, identifiers, values,
//! localities and operations.
//!
//! Run with: `cargo run --example quickstart`

use intellog::extract::{FieldCategory, IntelExtractor};
use intellog::spell::SpellParser;

fn main() {
    // The real-world MapReduce log snippet of Fig. 1 (two fetcher
    // instances, so Spell can discover the variable fields).
    let messages = [
        "fetcher # 1 about to shuffle output of map attempt_01",
        "[fetcher # 1] read 2264 bytes from map-output for attempt_01",
        "host1:13562 freed by fetcher # 1 in 4ms",
        "fetcher # 2 about to shuffle output of map attempt_07",
        "[fetcher # 2] read 998 bytes from map-output for attempt_07",
        "host2:13562 freed by fetcher # 2 in 11ms",
    ];

    // Stage 1: Spell extracts log keys.
    let mut parser = SpellParser::default();
    for m in &messages {
        parser.parse_message(m);
    }
    println!("=== Log keys (Spell, t = {}) ===", parser.threshold());
    for key in parser.keys() {
        println!("  {}  <- sample: {}", key.render(), key.render_sample());
    }

    // Stage 2: each log key becomes an Intel Key.
    let extractor = IntelExtractor::new();
    println!("\n=== Intel Keys ===");
    for key in parser.keys() {
        let ik = extractor.build(key);
        println!("key {}: {}", key.id, key.render());
        println!("  entities:   {:?}", ik.entity_phrases());
        for f in &ik.fields {
            let token = &ik.tokens[f.pos];
            match f.category {
                FieldCategory::Identifier => {
                    println!(
                        "  identifier: pos {} ({token}) type {}",
                        f.pos,
                        f.id_type.as_deref().unwrap_or("?")
                    )
                }
                FieldCategory::Value => {
                    println!(
                        "  value:      pos {} ({token}) unit/name {}",
                        f.pos,
                        f.name.as_deref().unwrap_or("?")
                    )
                }
                FieldCategory::Locality => println!("  locality:   pos {} ({token})", f.pos),
                FieldCategory::Skipped => {}
            }
        }
        for op in &ik.operations {
            println!("  operation:  {op}");
        }
        println!();
    }
}
