//! End-to-end anomaly hunt: the paper's case study 1 (§6.4).
//!
//! A MapReduce WordCount job suffers a network failure on one host.
//! IntelLog, trained on clean runs, flags the problematic sessions, lifts
//! the unexpected messages into Intel Messages, and the GroupBy diagnosis
//! procedure converges on the faulty host.
//!
//! Run with: `cargo run --example anomaly_hunt`

use intellog::core::{sessions_from_job, IntelLog};
use intellog::dlasim::{self, FaultKind, JobConfig, SystemKind, WorkloadGen};
use intellog::spell::Session;

fn main() {
    // 1. Train on clean MapReduce runs with tuned resources (paper §6.1).
    let mut gen = WorkloadGen::new(7, 10);
    let mut train: Vec<Session> = Vec::new();
    for j in 0..6 {
        let cfg = gen.training_config(SystemKind::MapReduce);
        for (i, mut s) in sessions_from_job(&dlasim::generate(&cfg, None))
            .into_iter()
            .enumerate()
        {
            s.id = format!("train{j}_{i}_{}", s.id);
            train.push(s);
        }
    }
    println!("trained on {} clean sessions", train.len());
    let il = IntelLog::train(&train);

    // 2. A 30 GB WordCount job runs while host worker4 loses its network.
    let cfg = JobConfig {
        system: SystemKind::MapReduce,
        workload: "wordcount".into(),
        input_gb: 30,
        mem_mb: 4096,
        cores: 8,
        executors: 4,
        hosts: 10,
        seed: 4242,
    };
    let plan = dlasim::FaultPlan::new(FaultKind::NetworkFailure, 0.3, 3, 0);
    let job = dlasim::generate(&cfg, Some(&plan));
    let sessions = sessions_from_job(&job);
    println!("job produced {} sessions", sessions.len());

    // 3. Detect.
    let report = il.detect_job(&sessions);
    println!(
        "\nIntelLog reports {} problematic sessions out of {}",
        report.problematic_count(),
        report.total_count()
    );
    for sr in report
        .sessions
        .iter()
        .filter(|s| s.is_problematic())
        .take(3)
    {
        println!("  session {}:", sr.session);
        for a in sr.anomalies.iter().take(3) {
            match a {
                intellog::anomaly::Anomaly::UnexpectedMessage { text, .. } => {
                    println!("    unexpected message: {text}")
                }
                other => println!("    {other:?}"),
            }
        }
    }

    // 4. Diagnose: GroupBy identifiers, then GroupBy locality (paper's
    //    procedure narrows 11 fetcher groups down to one host).
    let diag = il.diagnose(&report);
    println!("\n=== diagnosis ===\n{}", diag.render());
    match diag.hosts.first() {
        Some((host, n)) => println!("=> root-cause candidate: {host} ({n} failing connections)"),
        None => println!("=> no locality concentration found"),
    }
}
