//! Online detection: watch a session's log stream live.
//!
//! The paper's detection stage "consumes incoming logs" (Fig. 2). This
//! example replays a faulty MapReduce reducer's log line by line through
//! `anomaly::StreamDetector`: unexpected messages are reported the moment
//! they arrive; the structural verdict (missing critical keys, orders,
//! groups) lands when the session closes.
//!
//! Run with: `cargo run --release --example streaming_watch`

use intellog::anomaly::StreamDetector;
use intellog::core::{sessions_from_job, IntelLog};
use intellog::dlasim::{self, FaultKind, FaultPlan, SystemKind, WorkloadGen};

fn main() {
    // Train on clean runs.
    let mut gen = WorkloadGen::new(5, 8);
    let mut train = Vec::new();
    for j in 0..5 {
        let cfg = gen.training_config(SystemKind::MapReduce);
        for (i, mut s) in sessions_from_job(&dlasim::generate(&cfg, None))
            .into_iter()
            .enumerate()
        {
            s.id = format!("t{j}_{i}_{}", s.id);
            train.push(s);
        }
    }
    let il = IntelLog::train(&train);
    println!("trained on {} sessions", train.len());

    // A job with a network failure; stream its most affected session.
    let cfg = gen.detection_config(SystemKind::MapReduce, 3);
    let plan = FaultPlan::new(FaultKind::NetworkFailure, 0.3, 2, 0);
    let job = dlasim::generate(&cfg, Some(&plan));
    let sessions = sessions_from_job(&job);
    let victim = job
        .sessions
        .iter()
        .position(|s| s.affected)
        .expect("a session carries the fault");
    let session = &sessions[victim];
    println!(
        "streaming session {} ({} lines)…\n",
        session.id,
        session.len()
    );

    let mut watcher = StreamDetector::begin(il.detector(), session.id.clone());
    for l in &session.lines {
        if let Some(intellog::anomaly::Anomaly::UnexpectedMessage {
            ts_ms, text, intel, ..
        }) = watcher.feed(l)
        {
            println!(
                "[t={ts_ms:>6}ms] UNEXPECTED: {text}\n            entities {:?} localities {:?}",
                intel.entities, intel.localities
            );
        }
    }
    let report = watcher.finish();
    println!(
        "\nsession closed: {} anomalies total ({} surfaced online)",
        report.anomalies.len(),
        report
            .anomalies
            .iter()
            .filter(|a| a.is_unexpected_message())
            .count()
    );
}
